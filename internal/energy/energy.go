// Package energy models the per-bit energy consumption of content
// delivery, implementing the two parameterisations used by the paper
// (Table IV): Valancius et al., "Greening the Internet with Nano Data
// Centers" (CoNEXT 2009) and Baliga et al., "Green Cloud Computing"
// (Proc. IEEE 2011).
//
// All per-bit figures are expressed in nanojoules per bit (nJ/bit), as in
// the paper. Two per-bit cost functions are derived from the parameters:
//
//	ψs = PUE·(γs + γcdn) + l·γm          (server delivery, paper Eq. 4)
//	ψp = 2·l·γm + PUE·γp2p(layer)        (peer delivery, paper Eq. 5–6)
//
// where γp2p depends on the topology layer within which the two peers are
// matched (exchange point, point of presence, or core router).
package energy

import (
	"errors"
	"fmt"
)

// Layer identifies the lowest layer of the ISP metropolitan tree that
// contains both endpoints of a peer-to-peer transfer (see Fig. 1 of the
// paper). Values are ordered from most local to least local.
type Layer int

const (
	// LayerExchange means both peers sit under the same exchange point
	// (the most local, cheapest path).
	LayerExchange Layer = iota + 1
	// LayerPoP means the peers share a point of presence but not an
	// exchange point.
	LayerPoP
	// LayerCore means the path between the peers traverses the ISP core
	// router.
	LayerCore
)

// NumLayers is the number of distinct P2P localisation layers.
const NumLayers = 3

// String returns a human-readable layer name.
func (l Layer) String() string {
	switch l {
	case LayerExchange:
		return "exchange"
	case LayerPoP:
		return "pop"
	case LayerCore:
		return "core"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// Index returns the zero-based index of the layer, suitable for addressing
// fixed-size [NumLayers] arrays. It returns -1 for invalid layers.
func (l Layer) Index() int {
	if l < LayerExchange || l > LayerCore {
		return -1
	}
	return int(l) - 1
}

// Layers lists all valid layers from most local to least local.
func Layers() [NumLayers]Layer {
	return [NumLayers]Layer{LayerExchange, LayerPoP, LayerCore}
}

// Params is one complete set of per-bit energy parameters (one column of
// the paper's Table IV) plus the shared efficiency factors.
type Params struct {
	// Name identifies the parameter set in reports, e.g. "valancius".
	Name string

	// Server is γs, the per-bit consumption of the CDN content server.
	Server float64
	// Modem is γm, the per-bit consumption of the end-user modem or other
	// unshared customer-premises equipment.
	Modem float64
	// CDNNetwork is γcdn, the per-bit consumption of the network path
	// between a user and a CDN node.
	CDNNetwork float64
	// ExchangeNetwork is γexp, the per-bit consumption of a P2P path
	// localised within one exchange point.
	ExchangeNetwork float64
	// PoPNetwork is γpop, the per-bit consumption of a P2P path localised
	// within one point of presence.
	PoPNetwork float64
	// CoreNetwork is γcore, the per-bit consumption of a P2P path crossing
	// the ISP core.
	CoreNetwork float64

	// PUE is the power usage efficiency factor applied to shared network
	// and server equipment to account for redundancy and cooling.
	PUE float64
	// Loss is l, the energy loss factor for end-user equipment.
	Loss float64
}

// Valancius returns the Valancius et al. parameter column of Table IV.
// Network parameters follow the paper's h × 150 nJ/bit hop model:
// γcdn = 7 hops, γcore = 6, γpop = 4, γexp = 2.
func Valancius() Params {
	return Params{
		Name:            "valancius",
		Server:          211.1,
		Modem:           100.0,
		CDNNetwork:      1050.0,
		ExchangeNetwork: 300.0,
		PoPNetwork:      600.0,
		CoreNetwork:     900.0,
		PUE:             1.2,
		Loss:            1.07,
	}
}

// Baliga returns the Baliga et al. parameter column of Table IV. Network
// parameters are sums of the consumption of the individual networking
// nodes between the endpoints. PUE and Loss are taken from Valancius et
// al. for consistency, as in the paper.
func Baliga() Params {
	return Params{
		Name:            "baliga",
		Server:          281.3,
		Modem:           100.0,
		CDNNetwork:      142.5,
		ExchangeNetwork: 144.86,
		PoPNetwork:      197.48,
		CoreNetwork:     245.74,
		PUE:             1.2,
		Loss:            1.07,
	}
}

// BothModels returns the two published parameter sets in the order the
// paper reports them (Valancius, then Baliga). Experiments iterate over
// this slice to produce the two rows/panels of each figure.
func BothModels() []Params {
	return []Params{Valancius(), Baliga()}
}

// Validate checks that all parameters are physically meaningful: strictly
// positive efficiency factors and non-negative per-bit consumptions with
// monotone layer costs γexp <= γpop <= γcore.
func (p Params) Validate() error {
	switch {
	case p.PUE < 1:
		return errors.New("energy: PUE must be >= 1")
	case p.Loss < 1:
		return errors.New("energy: loss factor must be >= 1")
	case p.Server < 0, p.Modem < 0, p.CDNNetwork < 0,
		p.ExchangeNetwork < 0, p.PoPNetwork < 0, p.CoreNetwork < 0:
		return errors.New("energy: per-bit consumptions must be non-negative")
	case p.ExchangeNetwork > p.PoPNetwork || p.PoPNetwork > p.CoreNetwork:
		return errors.New("energy: layer costs must satisfy exchange <= pop <= core")
	}
	return nil
}

// Network returns the per-bit network consumption γ for a P2P transfer
// localised at the given layer.
func (p Params) Network(l Layer) float64 {
	switch l {
	case LayerExchange:
		return p.ExchangeNetwork
	case LayerPoP:
		return p.PoPNetwork
	default:
		return p.CoreNetwork
	}
}

// ServerPerBit returns ψs (paper Eq. 4): the total per-bit energy of
// serving a user from a CDN server, including the data-centre and network
// PUE overhead and the user's own modem.
func (p Params) ServerPerBit() float64 {
	return p.PUE*(p.Server+p.CDNNetwork) + p.Loss*p.Modem
}

// PeerModemPerBit returns ψm_p = 2·l·γm (paper Eq. 6): the swarm-size
// independent part of peer delivery. The modem term is counted twice
// because a shared bit is simultaneously uploaded by one user and
// downloaded by another.
func (p Params) PeerModemPerBit() float64 {
	return 2 * p.Loss * p.Modem
}

// PeerNetworkPerBit returns ψr_p = PUE·γp2p for a transfer localised at
// the given layer (the swarm-size dependent part of paper Eq. 6).
func (p Params) PeerNetworkPerBit(l Layer) float64 {
	return p.PUE * p.Network(l)
}

// PeerPerBit returns the full per-bit cost ψp of a peer transfer localised
// at the given layer (paper Eq. 5–6).
func (p Params) PeerPerBit(l Layer) float64 {
	return p.PeerModemPerBit() + p.PeerNetworkPerBit(l)
}

// ServerCreditPerBit returns the per-bit carbon credit the CDN can pass to
// users for each bit offloaded to peers: PUE·γs (Section V, Eq. 13).
func (p Params) ServerCreditPerBit() float64 {
	return p.PUE * p.Server
}

// UserPerBit returns l·γm, the per-bit consumption attributed to a user's
// own premises equipment for one direction of transfer.
func (p Params) UserPerBit() float64 {
	return p.Loss * p.Modem
}

// Joules converts a volume in bytes at a per-bit cost in nJ/bit into
// joules.
func Joules(bytes float64, perBitNanojoules float64) float64 {
	const bitsPerByte = 8
	const nanojoulesPerJoule = 1e9
	return bytes * bitsPerByte * perBitNanojoules / nanojoulesPerJoule
}

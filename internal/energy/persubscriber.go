package energy

import (
	"errors"
)

// SubscriberModel is the per-subscriber energy accounting discussed in
// the paper's related work (Section II, citing Baliga et al. 2011,
// Vereecken et al., Aleksić & Lovrić): equipment draws a fixed wattage
// per subscriber while powered, independent of instantaneous traffic.
//
// The paper argues for per-bit accounting instead — per-session records
// allow fine-grained demand estimation and per-user consumption is highly
// skewed — but the per-subscriber view matters for one related-work
// debate the model settles: whether a peer's modem should be billed to
// P2P delivery at all. Under per-subscriber accounting, the modem of a
// user who is already online draws its wattage regardless of whether it
// uploads (the Nano Data Centers argument of Valancius et al.); under
// per-bit accounting, every shared bit pays the 2·l·γm modem term. This
// type lets both positions be computed side by side.
type SubscriberModel struct {
	// Name labels the model in reports.
	Name string
	// AccessWatts is the always-on draw of the per-subscriber access
	// equipment (modem/CPE plus the subscriber's share of the access
	// line), in watts.
	AccessWatts float64
	// SharePerSubscriberWatts is the subscriber's share of aggregation
	// equipment, in watts.
	SharePerSubscriberWatts float64
}

// DefaultSubscriberModel returns per-subscriber constants in the range
// reported by the per-subscriber literature the paper cites: ~8 W for
// always-on CPE plus ~2 W of shared access equipment per subscriber.
func DefaultSubscriberModel() SubscriberModel {
	return SubscriberModel{
		Name:                    "per-subscriber",
		AccessWatts:             8,
		SharePerSubscriberWatts: 2,
	}
}

// Validate checks the model.
func (m SubscriberModel) Validate() error {
	if m.AccessWatts < 0 || m.SharePerSubscriberWatts < 0 {
		return errors.New("energy: subscriber wattages must be non-negative")
	}
	return nil
}

// WattsPerSubscriber returns the total always-on draw per subscriber.
func (m SubscriberModel) WattsPerSubscriber() float64 {
	return m.AccessWatts + m.SharePerSubscriberWatts
}

// EnergyJoules returns the energy drawn by a population of subscribers
// over a period — independent of traffic, which is precisely the point of
// contention with per-bit accounting.
func (m SubscriberModel) EnergyJoules(subscribers int, seconds float64) float64 {
	if subscribers <= 0 || seconds <= 0 {
		return 0
	}
	return m.WattsPerSubscriber() * float64(subscribers) * seconds
}

// MarginalUploadJoules returns the additional energy a subscriber's
// equipment draws to upload the given number of bits under this
// accounting: zero. The equipment is on anyway; this is the Valancius et
// al. Nano Data Centers position, contradicting Feldmann et al.'s
// baseline-power objection for users who are already online.
func (m SubscriberModel) MarginalUploadJoules(bits float64) float64 {
	_ = bits
	return 0
}

// AmortizedPerBit converts the model into an effective per-bit figure
// (nJ/bit) given the subscriber's monthly traffic volume in bytes. This
// is how per-subscriber constants are compared against Table IV: light
// users have enormous effective per-bit costs; heavy users dilute the
// fixed draw.
func (m SubscriberModel) AmortizedPerBit(monthlyBytes float64) (float64, error) {
	if monthlyBytes <= 0 {
		return 0, errors.New("energy: monthly volume must be positive")
	}
	const secondsPerMonth = 30 * 24 * 3600.0
	joules := m.WattsPerSubscriber() * secondsPerMonth
	bits := monthlyBytes * 8
	return joules / bits * 1e9, nil // J/bit -> nJ/bit
}

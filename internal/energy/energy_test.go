package energy

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestLayerString(t *testing.T) {
	tests := []struct {
		layer Layer
		want  string
	}{
		{LayerExchange, "exchange"},
		{LayerPoP, "pop"},
		{LayerCore, "core"},
		{Layer(0), "Layer(0)"},
		{Layer(9), "Layer(9)"},
	}
	for _, tt := range tests {
		if got := tt.layer.String(); got != tt.want {
			t.Errorf("Layer(%d).String() = %q, want %q", int(tt.layer), got, tt.want)
		}
	}
}

func TestLayerIndex(t *testing.T) {
	if got := LayerExchange.Index(); got != 0 {
		t.Errorf("exchange index = %d, want 0", got)
	}
	if got := LayerPoP.Index(); got != 1 {
		t.Errorf("pop index = %d, want 1", got)
	}
	if got := LayerCore.Index(); got != 2 {
		t.Errorf("core index = %d, want 2", got)
	}
	if got := Layer(0).Index(); got != -1 {
		t.Errorf("invalid layer index = %d, want -1", got)
	}
	if got := Layer(4).Index(); got != -1 {
		t.Errorf("invalid layer index = %d, want -1", got)
	}
}

func TestLayersOrder(t *testing.T) {
	ls := Layers()
	if ls[0] != LayerExchange || ls[1] != LayerPoP || ls[2] != LayerCore {
		t.Errorf("Layers() = %v, want exchange,pop,core", ls)
	}
}

func TestValanciusTableIV(t *testing.T) {
	p := Valancius()
	// The hop model: γcdn = 7×150, γcore = 6×150, γpop = 4×150, γexp = 2×150.
	if p.CDNNetwork != 7*150.0 {
		t.Errorf("γcdn = %v, want 1050", p.CDNNetwork)
	}
	if p.CoreNetwork != 6*150.0 {
		t.Errorf("γcore = %v, want 900", p.CoreNetwork)
	}
	if p.PoPNetwork != 4*150.0 {
		t.Errorf("γpop = %v, want 600", p.PoPNetwork)
	}
	if p.ExchangeNetwork != 2*150.0 {
		t.Errorf("γexp = %v, want 300", p.ExchangeNetwork)
	}
	if p.Server != 211.1 || p.Modem != 100.0 {
		t.Errorf("server/modem = %v/%v, want 211.1/100", p.Server, p.Modem)
	}
	if p.PUE != 1.2 || p.Loss != 1.07 {
		t.Errorf("PUE/Loss = %v/%v, want 1.2/1.07", p.PUE, p.Loss)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("published parameters must validate: %v", err)
	}
}

func TestBaligaTableIV(t *testing.T) {
	p := Baliga()
	if p.Server != 281.3 || p.CDNNetwork != 142.5 {
		t.Errorf("server/cdn = %v/%v, want 281.3/142.5", p.Server, p.CDNNetwork)
	}
	if p.ExchangeNetwork != 144.86 || p.PoPNetwork != 197.48 || p.CoreNetwork != 245.74 {
		t.Errorf("layer params = %v/%v/%v", p.ExchangeNetwork, p.PoPNetwork, p.CoreNetwork)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("published parameters must validate: %v", err)
	}
}

func TestBothModels(t *testing.T) {
	models := BothModels()
	if len(models) != 2 {
		t.Fatalf("BothModels returned %d sets, want 2", len(models))
	}
	if models[0].Name != "valancius" || models[1].Name != "baliga" {
		t.Errorf("model order = %q,%q; want valancius,baliga", models[0].Name, models[1].Name)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := Valancius()

	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"pue below one", func(p *Params) { p.PUE = 0.5 }},
		{"loss below one", func(p *Params) { p.Loss = 0.9 }},
		{"negative server", func(p *Params) { p.Server = -1 }},
		{"negative modem", func(p *Params) { p.Modem = -1 }},
		{"negative cdn net", func(p *Params) { p.CDNNetwork = -1 }},
		{"negative exchange", func(p *Params) { p.ExchangeNetwork = -1 }},
		{"layer inversion exp>pop", func(p *Params) { p.ExchangeNetwork = p.PoPNetwork + 1 }},
		{"layer inversion pop>core", func(p *Params) { p.PoPNetwork = p.CoreNetwork + 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestNetworkPerLayer(t *testing.T) {
	p := Valancius()
	if got := p.Network(LayerExchange); got != 300 {
		t.Errorf("Network(exchange) = %v, want 300", got)
	}
	if got := p.Network(LayerPoP); got != 600 {
		t.Errorf("Network(pop) = %v, want 600", got)
	}
	if got := p.Network(LayerCore); got != 900 {
		t.Errorf("Network(core) = %v, want 900", got)
	}
}

func TestServerPerBit(t *testing.T) {
	// ψs = PUE(γs + γcdn) + lγm, spelled out for both published models.
	v := Valancius()
	want := 1.2*(211.1+1050.0) + 1.07*100.0
	if got := v.ServerPerBit(); !almostEqual(got, want, 1e-9) {
		t.Errorf("valancius ψs = %v, want %v", got, want)
	}
	b := Baliga()
	want = 1.2*(281.3+142.5) + 1.07*100.0
	if got := b.ServerPerBit(); !almostEqual(got, want, 1e-9) {
		t.Errorf("baliga ψs = %v, want %v", got, want)
	}
}

func TestPeerModemPerBit(t *testing.T) {
	// ψm_p = 2lγm: modem energy is paid on both sides of a peer transfer.
	p := Valancius()
	if got := p.PeerModemPerBit(); !almostEqual(got, 214, 1e-9) {
		t.Errorf("ψm_p = %v, want 214", got)
	}
}

func TestPeerPerBitComposition(t *testing.T) {
	p := Baliga()
	for _, l := range Layers() {
		want := p.PeerModemPerBit() + p.PUE*p.Network(l)
		if got := p.PeerPerBit(l); !almostEqual(got, want, 1e-9) {
			t.Errorf("ψp(%v) = %v, want %v", l, got, want)
		}
	}
}

func TestPeerDeliveryCheaperThanServerWhenLocal(t *testing.T) {
	// The whole premise of the paper: a peer transfer localised at an
	// exchange point must be cheaper per bit than server delivery, in both
	// published models.
	for _, p := range BothModels() {
		if p.PeerPerBit(LayerExchange) >= p.ServerPerBit() {
			t.Errorf("%s: exchange-local peer delivery (%v) should beat server delivery (%v)",
				p.Name, p.PeerPerBit(LayerExchange), p.ServerPerBit())
		}
	}
}

func TestServerCreditPerBit(t *testing.T) {
	p := Valancius()
	if got := p.ServerCreditPerBit(); !almostEqual(got, 1.2*211.1, 1e-9) {
		t.Errorf("credit per bit = %v, want %v", got, 1.2*211.1)
	}
}

func TestUserPerBit(t *testing.T) {
	p := Baliga()
	if got := p.UserPerBit(); !almostEqual(got, 107, 1e-9) {
		t.Errorf("user per bit = %v, want 107", got)
	}
}

func TestJoules(t *testing.T) {
	// 1 GB at 1 nJ/bit = 8e9 bits × 1e-9 J = 8 J.
	if got := Joules(1e9, 1); !almostEqual(got, 8, 1e-9) {
		t.Errorf("Joules(1GB, 1 nJ/bit) = %v, want 8", got)
	}
	if got := Joules(0, 100); got != 0 {
		t.Errorf("Joules(0) = %v, want 0", got)
	}
}

package energy

import (
	"math"
	"testing"
)

func TestDefaultSubscriberModel(t *testing.T) {
	m := DefaultSubscriberModel()
	if err := m.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	if m.WattsPerSubscriber() != 10 {
		t.Errorf("watts per subscriber = %v, want 10", m.WattsPerSubscriber())
	}
}

func TestSubscriberModelValidate(t *testing.T) {
	m := SubscriberModel{AccessWatts: -1}
	if err := m.Validate(); err == nil {
		t.Error("negative wattage should be rejected")
	}
}

func TestSubscriberEnergyJoules(t *testing.T) {
	m := DefaultSubscriberModel()
	// 100 subscribers for one hour at 10 W = 3.6 MJ.
	if got := m.EnergyJoules(100, 3600); got != 3.6e6 {
		t.Errorf("EnergyJoules = %v, want 3.6e6", got)
	}
	if got := m.EnergyJoules(0, 3600); got != 0 {
		t.Errorf("zero subscribers should cost 0, got %v", got)
	}
	if got := m.EnergyJoules(10, -1); got != 0 {
		t.Errorf("negative period should cost 0, got %v", got)
	}
}

func TestMarginalUploadIsFree(t *testing.T) {
	// The Nano Data Centers position: an online user's modem uploads for
	// free under per-subscriber accounting.
	m := DefaultSubscriberModel()
	if got := m.MarginalUploadJoules(1e12); got != 0 {
		t.Errorf("marginal upload = %v, want 0", got)
	}
}

func TestAmortizedPerBit(t *testing.T) {
	m := DefaultSubscriberModel()
	if _, err := m.AmortizedPerBit(0); err == nil {
		t.Error("zero volume should error")
	}
	// 10 W for a month = 25.92 MJ. At 100 GB/month = 8e11 bits that is
	// 32400 nJ/bit — dwarfing every Table IV per-bit figure, the reason
	// the accounting choice matters.
	got, err := m.AmortizedPerBit(100e9)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * 30 * 24 * 3600.0 / (100e9 * 8) * 1e9
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("amortized per bit = %v, want %v", got, want)
	}
	if got < Valancius().ServerPerBit() {
		t.Errorf("light-user amortized cost (%v nJ/bit) should dwarf per-bit figures", got)
	}

	// Heavy users dilute the fixed draw: 10 TB/month drops two orders of
	// magnitude.
	heavy, err := m.AmortizedPerBit(10e12)
	if err != nil {
		t.Fatal(err)
	}
	if heavy >= got/50 {
		t.Errorf("heavy-user amortized cost %v should be ~100x below light-user %v", heavy, got)
	}
}

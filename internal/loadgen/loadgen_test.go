package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"consumelocal"
	"consumelocal/internal/obs"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("4:3:1")
	if err != nil {
		t.Fatal(err)
	}
	if m != (mix{producers: 4, followers: 3, trace: 1}) {
		t.Fatalf("parseMix(4:3:1) = %+v", m)
	}
	for _, bad := range []string{"", "4:3", "4:3:1:2", "a:3:1", "-1:3:1", "0:0:0", "4::1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestApportion(t *testing.T) {
	cases := []struct {
		mix     string
		clients int
		want    mix
	}{
		{"4:3:1", 256, mix{producers: 128, followers: 96, trace: 32}},
		{"4:3:1", 8, mix{producers: 4, followers: 3, trace: 1}},
		// Every positive weight fields at least one client.
		{"100:1:1", 6, mix{producers: 4, followers: 1, trace: 1}},
		{"1:0:0", 5, mix{producers: 5}},
		{"4:3:1", 1, mix{producers: 1}},
	}
	for _, tc := range cases {
		m, err := parseMix(tc.mix)
		if err != nil {
			t.Fatal(err)
		}
		got := m.apportion(tc.clients)
		if got != tc.want {
			t.Errorf("apportion(%q, %d) = %+v, want %+v", tc.mix, tc.clients, got, tc.want)
		}
		if got.producers+got.followers+got.trace != tc.clients {
			t.Errorf("apportion(%q, %d) lost clients: %+v", tc.mix, tc.clients, got)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	good.Addr = "http://localhost:1"
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutate := map[string]func(*Config){
		"no target": func(c *Config) { c.Addr, c.DaemonPath = "", "" },
		"bare addr": func(c *Config) { c.Addr = "localhost:8377" },
		"clients":   func(c *Config) { c.Clients = 0 },
		"duration":  func(c *Config) { c.Duration = 0 },
		"burst":     func(c *Config) { c.Burst = 0 },
		"mix":       func(c *Config) { c.Mix = "1:2" },
		"wall":      func(c *Config) { c.WallFraction = 1.5 },
		"scale":     func(c *Config) { c.Scale = 0 },
		"window":    func(c *Config) { c.Window = 30 },
		"max jobs":  func(c *Config) { c.MaxJobs = -1 },
	}
	for name, f := range mutate {
		c := good
		f(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestPacerUnpaced(t *testing.T) {
	p := newPacer(0, 1)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		if err := p.wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("unpaced wait throttled: 1000 ops took %s", d)
	}
}

func TestPacerShapesRate(t *testing.T) {
	// 100 ops/s with burst 1: 20 ops need ~190ms of token refill.
	p := newPacer(100, 1)
	start := time.Now()
	for i := 0; i < 20; i++ {
		if err := p.wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Fatalf("pacer let 20 ops through in %s at 100/s burst 1", d)
	}
}

func TestPacerCancel(t *testing.T) {
	p := newPacer(0.001, 1)
	if err := p.wait(context.Background()); err != nil { // drain the burst token
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.wait(ctx); err == nil {
		t.Fatal("wait returned without a token before cancellation")
	}
}

func TestPacerBehindSchedule(t *testing.T) {
	p := newPacer(1000, 4)
	p.last = time.Now().Add(-time.Second) // a second of unconsumed offered load
	if err := p.wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := p.behindSchedule(); got < 900 {
		t.Fatalf("behindSchedule = %d after a second of saturation at 1000/s", got)
	}
}

func TestSummariseEmptyMarshals(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("test_seconds", "t", obs.LatencyBuckets)
	s := summarise(h)
	if s.Count != 0 || s.P99Ms != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("empty summary does not marshal: %v", err)
	}
}

// stubDaemon is an in-process stand-in for consumelocald implementing
// just enough of the job API for the harness's client loops, with a
// real obs registry behind /metrics so the scrape cross-check runs the
// same code path as against the daemon.
type stubDaemon struct {
	mu     sync.Mutex
	nextID int
	jobs   map[int]*stubJob

	reg     *obs.Registry
	pushed  *obs.Counter
	windows *obs.Counter
}

type stubJob struct {
	id     int
	ingest bool
	status string
}

func newStubDaemon() *stubDaemon {
	sd := &stubDaemon{nextID: 1, jobs: make(map[int]*stubJob), reg: obs.NewRegistry()}
	sd.pushed = sd.reg.Counter("consumelocald_ingest_sessions_pushed_total", "stub.")
	sd.windows = sd.reg.Counter("consumelocal_replay_windows_settled_total", "stub.")
	sd.reg.Counter("consumelocald_jobs_rejected_total", "stub.")
	sd.reg.GaugeFunc("consumelocald_jobs_running", "stub.", func() float64 {
		sd.mu.Lock()
		defer sd.mu.Unlock()
		n := 0
		for _, j := range sd.jobs {
			if j.status == "running" {
				n++
			}
		}
		return float64(n)
	})
	return sd
}

func (sd *stubDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", sd.reg.Handler())
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		sd.mu.Lock()
		j := &stubJob{id: sd.nextID, ingest: r.URL.Query().Get("source") == "ingest", status: "running"}
		sd.nextID++
		sd.jobs[j.id] = j
		sd.mu.Unlock()
		if !j.ingest {
			// Spooled traces replay fast in the stub.
			go func() {
				time.Sleep(20 * time.Millisecond)
				sd.mu.Lock()
				j.status = "done"
				sd.mu.Unlock()
			}()
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": j.id})
	})
	mux.HandleFunc("POST /v1/jobs/{id}/sessions", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		n := 0
		for _, line := range strings.Split(string(body), "\n") {
			if strings.TrimSpace(line) != "" {
				n++
			}
		}
		sd.pushed.Add(float64(n))
		json.NewEncoder(w).Encode(map[string]any{"pushed": n})
	})
	mux.HandleFunc("POST /v1/jobs/{id}/finish", func(w http.ResponseWriter, r *http.Request) {
		sd.mu.Lock()
		for _, j := range sd.jobs {
			if fmt.Sprint(j.id) == r.PathValue("id") {
				j.status = "done"
			}
		}
		sd.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{})
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		sd.mu.Lock()
		views := make([]map[string]any, 0, len(sd.jobs))
		for _, j := range sd.jobs {
			views = append(views, map[string]any{"id": j.id, "status": j.status, "ingest": j.ingest})
		}
		sd.mu.Unlock()
		json.NewEncoder(w).Encode(views)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		sd.mu.Lock()
		defer sd.mu.Unlock()
		for _, j := range sd.jobs {
			if fmt.Sprint(j.id) == r.PathValue("id") {
				json.NewEncoder(w).Encode(map[string]any{"id": j.id, "status": j.status, "ingest": j.ingest})
				return
			}
		}
		http.Error(w, "not found", http.StatusNotFound)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/snapshots", func(w http.ResponseWriter, r *http.Request) {
		fl, _ := w.(http.Flusher)
		for i := 0; i < 3; i++ {
			fmt.Fprintf(w, `{"to_sec":%d}`+"\n", (i+1)*3600)
			if fl != nil {
				fl.Flush()
			}
			sd.windows.Inc()
			select {
			case <-r.Context().Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
	})
	return mux
}

func TestRunAgainstStubDaemon(t *testing.T) {
	sd := newStubDaemon()
	ts := httptest.NewServer(sd.handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "BENCH_daemon.json")
	cfg := DefaultConfig()
	cfg.Addr = ts.URL
	cfg.Clients = 12
	cfg.Duration = 500 * time.Millisecond
	cfg.Rate = 2000
	cfg.Burst = 64
	cfg.Scale = 0.001
	cfg.Output = out

	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors.HTTP5xx != 0 {
		t.Fatalf("stub run saw %d 5xx", rep.Errors.HTTP5xx)
	}
	if rep.Ingest.JobsOpened == 0 || rep.Ingest.SessionsAccepted == 0 {
		t.Fatalf("no ingest progress: %+v", rep.Ingest)
	}
	if rep.Latency.Create.Count == 0 || rep.Latency.Batch.Count == 0 {
		t.Fatalf("latency histograms empty: %+v", rep.Latency)
	}
	if rep.Server == nil {
		t.Fatal("report missing server section")
	}
	// The stub's session ledger is driven by the same pushes the
	// clients count, and nothing else talks to it — the cross-check
	// must agree exactly.
	if rep.Skew.Diff != 0 {
		t.Fatalf("session ledgers disagree: client %d, server %d",
			rep.Skew.ClientSessions, rep.Skew.ServerSessions)
	}
	if rep.Fleet.Producers+rep.Fleet.Followers+rep.Fleet.TraceClients != cfg.Clients {
		t.Fatalf("fleet does not add up: %+v", rep.Fleet)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var reread Report
	if err := json.Unmarshal(data, &reread); err != nil {
		t.Fatalf("written report does not parse: %v", err)
	}
	if reread.Ingest.SessionsAccepted != rep.Ingest.SessionsAccepted {
		t.Fatal("written report disagrees with returned report")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig() // neither Addr nor DaemonPath
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("Run accepted a config with no target")
	}
}

func TestRenderBatchesCoversHorizon(t *testing.T) {
	liveCfg := consumelocal.DefaultLiveTraceConfig(0.002)
	tr, err := consumelocal.GenerateLiveTrace(liveCfg)
	if err != nil {
		t.Fatal(err)
	}
	batches := renderBatches(tr, 3600)
	if len(batches) == 0 {
		t.Fatal("no batches")
	}
	total := 0
	for _, b := range batches {
		total += b.sessions
	}
	if total != len(tr.Sessions) {
		t.Fatalf("batches carry %d sessions, trace has %d", total, len(tr.Sessions))
	}
	if last := batches[len(batches)-1].boundary; last != tr.HorizonSec {
		t.Fatalf("last boundary %d, want horizon %d", last, tr.HorizonSec)
	}
	for i := 1; i < len(batches); i++ {
		if batches[i].boundary <= batches[i-1].boundary {
			t.Fatalf("boundaries not increasing at %d", i)
		}
	}
}

package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"consumelocal/internal/obs"
)

// Report is the BENCH_daemon.json schema: the daemon-side perf
// trajectory, recorded per PR next to BENCH_replay.json. Client-side
// numbers come from the harness's own histograms and counters;
// server-side numbers come from /metrics scrapes bracketing the run,
// so the two views can be cross-checked (Skew).
type Report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Target      string `json:"target"`
	Spawned     bool   `json:"spawned"`

	Config struct {
		Clients      int     `json:"clients"`
		DurationSec  float64 `json:"duration_sec"`
		Rate         float64 `json:"rate_ops_per_sec"`
		Burst        int     `json:"burst"`
		Mix          string  `json:"mix"`
		WallFraction float64 `json:"wall_fraction"`
		Scale        float64 `json:"scale"`
		Window       int64   `json:"window_sec"`
		Seed         int64   `json:"seed"`
	} `json:"config"`

	Fleet struct {
		Producers     int `json:"producers"`
		WallProducers int `json:"wall_producers"`
		Followers     int `json:"followers"`
		TraceClients  int `json:"trace_clients"`
	} `json:"fleet"`

	ElapsedSec float64 `json:"elapsed_sec"`

	Ingest struct {
		JobsOpened       int64   `json:"jobs_opened"`
		JobsFinished     int64   `json:"jobs_finished"`
		TraceJobs        int64   `json:"trace_jobs"`
		SessionsAccepted int64   `json:"sessions_accepted"`
		SessionsPerSec   float64 `json:"sessions_per_sec"`
		// ProducersReattached counts producers that continued a
		// crash-surviving (resumed) ingest job from its journalled
		// progress instead of recycling.
		ProducersReattached int64 `json:"producers_reattached"`
	} `json:"ingest"`

	Latency struct {
		Create   LatencySummary `json:"create"`
		Batch    LatencySummary `json:"batch"`
		Snapshot LatencySummary `json:"snapshot"`
	} `json:"latency"`

	Follow struct {
		Streams int64 `json:"streams"`
		Lines   int64 `json:"lines"`
	} `json:"follow"`

	Errors struct {
		HTTP5xx     int64 `json:"http_5xx"`
		HTTP4xx     int64 `json:"http_4xx_unexpected"`
		Network     int64 `json:"network"`
		Quota429    int64 `json:"backpressure_429"`
		Conflict409 int64 `json:"ordering_409"`
		// BehindScheduleOps counts offered token-bucket arrivals the
		// fleet never consumed — nonzero means the daemon (or the
		// harness host) could not sustain the configured rate.
		BehindScheduleOps int64 `json:"behind_schedule_ops"`
		// RestartWindow counts transport failures inside the chaos
		// restart window — the injected fault, ledgered apart so
		// Network keeps meaning "unexpected".
		RestartWindow int64 `json:"restart_window_errors"`
	} `json:"errors"`

	Server *ServerSection `json:"server,omitempty"`

	Skew struct {
		// ClientSessions is what the fleet believes the daemon
		// acknowledged; ServerSessions is the daemon's own
		// ingest_sessions_pushed_total delta over the run. In spawn
		// mode nothing else talks to the daemon, so any difference is
		// a bug in one of the two ledgers.
		ClientSessions int64 `json:"client_sessions"`
		ServerSessions int64 `json:"server_sessions"`
		Diff           int64 `json:"diff"`
	} `json:"skew"`

	Daemon *DaemonSection `json:"daemon,omitempty"`

	Chaos *ChaosSection `json:"chaos,omitempty"`
}

// ChaosSection reports the mid-run kill/restart cycles: their timings
// (slowest observed when more than one cycle ran), what the restarted
// daemon recovered — summed across cycles — and whether the session
// ledger still reconciles across the crashes.
type ChaosSection struct {
	Kills       int     `json:"kills"`
	KilledAtSec float64 `json:"killed_at_sec"`
	ExitMs      float64 `json:"daemon_exit_ms"`
	RelistenMs  float64 `json:"relisten_ms"`
	RecoveryMs  float64 `json:"recovery_ms"`

	RestoredJobs     int    `json:"restored_jobs"`
	ResumedJobs      int    `json:"resumed_jobs"`
	ResumeFailedJobs int    `json:"resume_failed_jobs"`
	InterruptedJobs  int    `json:"interrupted_jobs"`
	TornTail         bool   `json:"torn_tail"`
	RestartError     string `json:"restart_error,omitempty"`

	// The post-crash ledger cross-check. The daemon journals and
	// fsyncs every batch before acknowledging it, so the server-side
	// session count may only EXCEED the client's — by at most one
	// in-flight (unacknowledged) batch per producer per kill, which is
	// what LedgerBound encodes (reattaching producers reclaim most of
	// that slack by crediting journalled rows). A diff outside
	// [0, bound] means sessions were lost or double-counted across a
	// crash.
	LedgerDiff  int64 `json:"ledger_diff"`
	LedgerBound int64 `json:"ledger_bound"`
	LedgerOK    bool  `json:"ledger_ok"`
}

// LatencySummary is one operation class's latency digest, in
// milliseconds, interpolated from the harness's fixed-bucket
// histograms via obs.Histogram.Quantile.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// ServerSection brackets the run with /metrics-derived aggregates.
type ServerSection struct {
	Initial map[string]float64 `json:"initial"`
	Mid     map[string]float64 `json:"mid,omitempty"`
	Final   map[string]float64 `json:"final"`
	Delta   map[string]float64 `json:"delta"`
}

// DaemonSection describes a spawned daemon's footprint.
type DaemonSection struct {
	PID          int    `json:"pid"`
	Addr         string `json:"addr"`
	RSSPeakBytes int64  `json:"rss_peak_bytes"`
}

// serverSample is one parsed /metrics scrape reduced to the aggregates
// the report tracks.
type serverSample struct {
	values map[string]float64
}

// trackedSeries are the exact daemon series the report follows 1:1.
var trackedSeries = []string{
	"consumelocald_ingest_sessions_pushed_total",
	"consumelocald_jobs_rejected_total",
	"consumelocald_jobs_running",
	"consumelocald_ingest_blocked_seconds_total",
	"consumelocald_ingest_queue_depth",
	"consumelocal_replay_windows_settled_total",
}

// scrape pulls and lints /metrics, reducing it to the tracked series
// plus label-summed aggregates for the vec families (requests by
// family and by 5xx, submissions and finishes across kinds).
func (r *run) scrape(ctx context.Context) (*serverSample, error) {
	opCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), opGrace)
	defer cancel()
	req, err := http.NewRequestWithContext(opCtx, http.MethodGet, r.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics returned %s", resp.Status)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("exposition does not lint: %w", err)
	}
	s := &serverSample{values: make(map[string]float64)}
	for _, name := range trackedSeries {
		if v, ok := exp.Value(name); ok {
			s.values[name] = v
		}
	}
	for series, v := range exp.Samples {
		switch {
		case strings.HasPrefix(series, "consumelocald_http_requests_total{"):
			s.values["consumelocald_http_requests_total"] += v
			if strings.Contains(series, `code="5`) {
				s.values["consumelocald_http_responses_5xx_total"] += v
			}
		case strings.HasPrefix(series, "consumelocald_jobs_submitted_total{"):
			s.values["consumelocald_jobs_submitted_total"] += v
		case strings.HasPrefix(series, "consumelocald_jobs_finished_total{"):
			s.values["consumelocald_jobs_finished_total"] += v
		}
	}
	return s, nil
}

// summarise digests one histogram; an empty histogram reports zeros
// (JSON has no NaN).
func summarise(h *obs.Histogram) LatencySummary {
	s := LatencySummary{Count: h.Count()}
	if s.Count == 0 {
		return s
	}
	s.MeanMs = h.Sum() / float64(s.Count) * 1e3
	s.P50Ms = h.Quantile(0.50) * 1e3
	s.P95Ms = h.Quantile(0.95) * 1e3
	s.P99Ms = h.Quantile(0.99) * 1e3
	return s
}

// buildReport assembles the run's report from the client-side registry
// and the bracketing scrapes.
func (r *run) buildReport(elapsed time.Duration, initial, mid, final *serverSample, chaos *chaosOutcome) *Report {
	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Target:      r.base,
		Spawned:     r.curDaemon() != nil,
	}
	rep.Config.Clients = r.cfg.Clients
	rep.Config.DurationSec = r.cfg.Duration.Seconds()
	rep.Config.Rate = r.cfg.Rate
	rep.Config.Burst = r.cfg.Burst
	rep.Config.Mix = r.cfg.Mix
	rep.Config.WallFraction = r.cfg.WallFraction
	rep.Config.Scale = r.cfg.Scale
	rep.Config.Window = r.cfg.Window
	rep.Config.Seed = r.cfg.Seed

	rep.Fleet.Producers = r.counts.producers
	rep.Fleet.WallProducers = r.wall
	rep.Fleet.Followers = r.counts.followers
	rep.Fleet.TraceClients = r.counts.trace

	rep.ElapsedSec = elapsed.Seconds()

	rep.Ingest.JobsOpened = int64(r.jobsOpened.Value())
	rep.Ingest.JobsFinished = int64(r.jobsFinished.Value())
	rep.Ingest.TraceJobs = int64(r.tracesSubmitted.Value())
	rep.Ingest.SessionsAccepted = int64(r.sessionsAccepted.Value())
	rep.Ingest.ProducersReattached = int64(r.reattached.Value())
	if elapsed > 0 {
		rep.Ingest.SessionsPerSec = r.sessionsAccepted.Value() / elapsed.Seconds()
	}

	rep.Latency.Create = summarise(r.createLat)
	rep.Latency.Batch = summarise(r.batchLat)
	rep.Latency.Snapshot = summarise(r.snapLat)

	rep.Follow.Streams = int64(r.followStreams.Value())
	rep.Follow.Lines = int64(r.snapshotLines.Value())

	rep.Errors.HTTP5xx = int64(r.err5xx.Value())
	rep.Errors.HTTP4xx = int64(r.err4xx.Value())
	rep.Errors.Network = int64(r.errNet.Value())
	rep.Errors.Quota429 = int64(r.quota429.Value())
	rep.Errors.Conflict409 = int64(r.conflict409.Value())
	rep.Errors.BehindScheduleOps = r.pace.behindSchedule()
	rep.Errors.RestartWindow = int64(r.restartErrs.Value())

	if initial != nil && final != nil {
		sec := &ServerSection{
			Initial: initial.values,
			Final:   final.values,
			Delta:   make(map[string]float64, len(final.values)),
		}
		if mid != nil {
			sec.Mid = mid.values
		}
		for k, v := range final.values {
			sec.Delta[k] = v - initial.values[k]
		}
		rep.Server = sec

		rep.Skew.ClientSessions = rep.Ingest.SessionsAccepted
		rep.Skew.ServerSessions = int64(sec.Delta["consumelocald_ingest_sessions_pushed_total"])
		rep.Skew.Diff = rep.Skew.ServerSessions - rep.Skew.ClientSessions
	}

	if d := r.curDaemon(); d != nil {
		d.sampleRSS()
		rep.Daemon = &DaemonSection{
			PID:          d.cmd.Process.Pid,
			Addr:         d.addr,
			RSSPeakBytes: d.rssPeak.Load(),
		}
	}

	if chaos != nil {
		c := &ChaosSection{
			Kills:            chaos.kills,
			KilledAtSec:      chaos.killedAt.Seconds(),
			ExitMs:           chaos.exit.Seconds() * 1e3,
			RelistenMs:       chaos.relisten.Seconds() * 1e3,
			RecoveryMs:       chaos.healthy.Seconds() * 1e3,
			RestoredJobs:     chaos.restored,
			ResumedJobs:      chaos.resumed,
			ResumeFailedJobs: chaos.resumeFailed,
			InterruptedJobs:  chaos.interrupted,
			TornTail:         chaos.tornTail,
		}
		if chaos.err != nil {
			c.RestartError = chaos.err.Error()
		}
		// One unacknowledged batch per producer per kill is the most the
		// crashes may leave journalled on the server without a
		// client-side ack.
		maxBatch := 0
		for _, b := range r.batches {
			if b.sessions > maxBatch {
				maxBatch = b.sessions
			}
		}
		kills := chaos.kills
		if kills < 1 {
			kills = 1
		}
		c.LedgerBound = int64(kills) * int64(r.counts.producers) * int64(maxBatch)
		c.LedgerDiff = rep.Skew.Diff
		c.LedgerOK = c.RestartError == "" && rep.Server != nil &&
			c.LedgerDiff >= 0 && c.LedgerDiff <= c.LedgerBound
		rep.Chaos = c
	}
	return rep
}

// write renders the report as indented JSON.
func (rep *Report) write(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("loadgen: encode report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("loadgen: write report: %w", err)
	}
	return nil
}

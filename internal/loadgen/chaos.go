package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// chaosOutcome is what the fault injection measured: when the daemon
// was killed (into the run), how long the process took to die, to
// listen again, and to answer /healthz with its recovery report — plus
// that report's headline numbers. err records a restart that never
// came back; the run still finishes and reports it.
type chaosOutcome struct {
	killedAt    time.Duration
	exit        time.Duration
	relisten    time.Duration
	healthy     time.Duration
	restored    int
	interrupted int
	tornTail    bool
	err         error
}

// healthzView is the slice of GET /healthz the chaos cycle reads back
// after a restart.
type healthzView struct {
	Status   string `json:"status"`
	Recovery struct {
		Restored    int  `json:"restored_jobs"`
		Interrupted int  `json:"interrupted_jobs"`
		TornTail    bool `json:"torn_tail"`
	} `json:"recovery"`
}

// chaosCycle is the fault injection: at half time it SIGKILLs the
// spawned daemon — no drain, no flush, exactly the crash the journal
// exists for — and restarts it on the same address and data directory
// while the fleet keeps offering load. The restart window (kill until
// healthy-plus-grace) diverts transport errors into their own ledger;
// everything after the window must behave as if nothing happened.
func (r *run) chaosCycle(ctx, runCtx context.Context) *chaosOutcome {
	epoch := time.Now()
	half := time.NewTimer(r.cfg.Duration / 2)
	defer half.Stop()
	select {
	case <-runCtx.Done():
		return nil
	case <-half.C:
	}

	out := &chaosOutcome{killedAt: time.Since(epoch)}
	d := r.curDaemon()
	if d == nil {
		out.err = fmt.Errorf("loadgen: chaos armed without a spawned daemon")
		return out
	}

	// Open the window before the kill so no failed request between the
	// SIGKILL and the flag races into the real error counters. If the
	// restart fails the window deliberately stays open: every error
	// after a dead daemon is still the injected fault.
	r.window.Store(true)
	t0 := time.Now()
	r.logf("loadtest: chaos: SIGKILL daemon pid %d at t+%.1fs", d.cmd.Process.Pid, out.killedAt.Seconds())
	d.kill()
	out.exit = time.Since(t0)

	nd, err := spawnDaemon(ctx, r.cfg.DaemonPath, r.spawnOpt, r.cfg.Out)
	if err != nil {
		out.err = fmt.Errorf("loadgen: chaos respawn: %w", err)
		return out
	}
	out.relisten = time.Since(t0)
	// Carry the old peak forward so the report's RSS covers the run,
	// not just the survivor.
	nd.rssPeak.Store(d.rssPeak.Load())
	r.setDaemon(nd)

	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			out.err = fmt.Errorf("loadgen: restarted daemon not healthy within 15s")
			return out
		}
		if v, ok := r.probeHealth(ctx); ok {
			out.healthy = time.Since(t0)
			out.restored = v.Recovery.Restored
			out.interrupted = v.Recovery.Interrupted
			out.tornTail = v.Recovery.TornTail
			break
		}
		probe := time.NewTimer(50 * time.Millisecond)
		select {
		case <-ctx.Done():
			probe.Stop()
			out.err = ctx.Err()
			return out
		case <-probe.C:
		}
	}

	// Grace: requests fired at the dying socket can surface their
	// transport errors a beat after /healthz answers; let the
	// stragglers land inside the window they belong to.
	grace := time.NewTimer(250 * time.Millisecond)
	defer grace.Stop()
	select {
	case <-ctx.Done():
	case <-grace.C:
	}
	r.window.Store(false)
	r.logf("loadtest: chaos: daemon pid %d healthy %.0fms after kill (restored %d, interrupted %d, torn tail %v)",
		nd.cmd.Process.Pid, out.healthy.Seconds()*1e3, out.restored, out.interrupted, out.tornTail)
	return out
}

// probeHealth asks /healthz once, off the measured path (no counters,
// no histograms — the daemon is expected to be down while this polls).
func (r *run) probeHealth(ctx context.Context) (*healthzView, bool) {
	opCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(opCtx, http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		return nil, false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var v healthzView
	if json.Unmarshal(body, &v) != nil || v.Status != "ok" {
		return nil, false
	}
	return &v, true
}

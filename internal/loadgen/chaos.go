package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// chaosOutcome is what the fault injection measured across every
// kill/restart cycle: when the first kill landed, the slowest timings
// observed (exit, relisten, healthy — the run's worst case), and the
// recovery headline numbers summed over cycles. err records a restart
// that never came back; the run still finishes and reports it.
type chaosOutcome struct {
	kills        int
	killedAt     time.Duration // first kill, into the run
	exit         time.Duration // slowest observed
	relisten     time.Duration // slowest observed
	healthy      time.Duration // slowest observed
	restored     int
	resumed      int
	resumeFailed int
	interrupted  int
	tornTail     bool
	err          error
}

// healthzView is the slice of GET /healthz the chaos cycle reads back
// after a restart.
type healthzView struct {
	Status   string `json:"status"`
	Recovery struct {
		Restored     int  `json:"restored_jobs"`
		Resumed      int  `json:"resumed_jobs"`
		ResumeFailed int  `json:"resume_failed_jobs"`
		Interrupted  int  `json:"interrupted_jobs"`
		TornTail     bool `json:"torn_tail"`
	} `json:"recovery"`
}

// chaosCycle is the fault injection: ChaosKills times, spread evenly
// through the run, it SIGKILLs the spawned daemon — no drain, no
// flush, exactly the crash the journal exists for — and restarts it on
// the same address and data directory while the fleet keeps offering
// load. Live ingest streams must survive every cycle: the restarted
// daemon resumes them from the journal, and producers reattach. The
// restart window (kill until healthy-plus-grace) diverts transport
// errors into their own ledger; everything after each window must
// behave as if nothing happened.
func (r *run) chaosCycle(ctx, runCtx context.Context) *chaosOutcome {
	kills := r.cfg.ChaosKills
	if kills <= 0 {
		kills = 1
	}
	epoch := time.Now()
	out := &chaosOutcome{}
	for i := 0; i < kills; i++ {
		at := r.cfg.Duration * time.Duration(i+1) / time.Duration(kills+1)
		timer := time.NewTimer(at - time.Since(epoch))
		select {
		case <-runCtx.Done():
			timer.Stop()
			if out.kills == 0 {
				return nil
			}
			return out
		case <-timer.C:
		}
		if err := r.killOnce(ctx, epoch, out); err != nil {
			out.err = err
			return out
		}
	}
	return out
}

// killOnce runs one SIGKILL/respawn/recover cycle, folding its
// measurements into out.
func (r *run) killOnce(ctx context.Context, epoch time.Time, out *chaosOutcome) error {
	killedAt := time.Since(epoch)
	if out.kills == 0 {
		out.killedAt = killedAt
	}
	d := r.curDaemon()
	if d == nil {
		return fmt.Errorf("loadgen: chaos armed without a spawned daemon")
	}

	// Open the window before the kill so no failed request between the
	// SIGKILL and the flag races into the real error counters. If the
	// restart fails the window deliberately stays open: every error
	// after a dead daemon is still the injected fault.
	r.window.Store(true)
	t0 := time.Now()
	r.logf("loadtest: chaos: SIGKILL daemon pid %d at t+%.1fs (cycle %d)", d.cmd.Process.Pid, killedAt.Seconds(), out.kills+1)
	d.kill()
	out.exit = max(out.exit, time.Since(t0))

	nd, err := spawnDaemon(ctx, r.cfg.DaemonPath, r.spawnOpt, r.cfg.Out)
	if err != nil {
		return fmt.Errorf("loadgen: chaos respawn: %w", err)
	}
	out.relisten = max(out.relisten, time.Since(t0))
	// Carry the old peak forward so the report's RSS covers the run,
	// not just the survivor.
	nd.rssPeak.Store(d.rssPeak.Load())
	r.setDaemon(nd)

	deadline := time.Now().Add(15 * time.Second)
	var v *healthzView
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: restarted daemon not healthy within 15s")
		}
		var ok bool
		if v, ok = r.probeHealth(ctx); ok {
			out.healthy = max(out.healthy, time.Since(t0))
			out.restored += v.Recovery.Restored
			out.resumed += v.Recovery.Resumed
			out.resumeFailed += v.Recovery.ResumeFailed
			out.interrupted += v.Recovery.Interrupted
			out.tornTail = out.tornTail || v.Recovery.TornTail
			break
		}
		probe := time.NewTimer(50 * time.Millisecond)
		select {
		case <-ctx.Done():
			probe.Stop()
			return ctx.Err()
		case <-probe.C:
		}
	}

	// Grace: requests fired at the dying socket can surface their
	// transport errors a beat after /healthz answers; let the
	// stragglers land inside the window they belong to.
	grace := time.NewTimer(250 * time.Millisecond)
	defer grace.Stop()
	select {
	case <-ctx.Done():
	case <-grace.C:
	}
	r.window.Store(false)
	out.kills++
	r.logf("loadtest: chaos: daemon pid %d healthy %.0fms after kill (restored %d, resumed %d, resume failed %d, interrupted %d, torn tail %v)",
		nd.cmd.Process.Pid, time.Since(t0).Seconds()*1e3,
		v.Recovery.Restored, v.Recovery.Resumed, v.Recovery.ResumeFailed, v.Recovery.Interrupted, v.Recovery.TornTail)
	return nil
}

// probeHealth asks /healthz once, off the measured path (no counters,
// no histograms — the daemon is expected to be down while this polls).
func (r *run) probeHealth(ctx context.Context) (*healthzView, bool) {
	opCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(opCtx, http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		return nil, false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var v healthzView
	if json.Unmarshal(body, &v) != nil || v.Status != "ok" {
		return nil, false
	}
	return &v, true
}

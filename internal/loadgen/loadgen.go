// Package loadgen is the production load harness behind `consumelocal
// loadtest`: it drives a running consumelocald — or spawns one itself —
// with hundreds of concurrent clients in a configurable workload mix
// (live ingest producers, snapshot followers, spooled trace
// submissions), shapes the offered load with an open-loop token-bucket
// arrival model, and measures what the daemon actually delivered:
// per-operation latency percentiles from the repo's own fixed-bucket
// histograms, HTTP error and backpressure-stall counts, ingest
// throughput, daemon RSS, and a client-versus-server cross-check built
// from /metrics scrapes taken at the start, middle and end of the run.
//
// The harness is deliberately built from the same parts it measures:
// latencies land in internal/obs histograms (the daemon's own histogram
// implementation), scrapes are parsed with obs.ParseExposition (the CI
// metrics linter), and the workload is the evening-TV live trace the
// ingest API was designed around. The JSON report (BENCH_daemon.json)
// is the daemon-side companion to BENCH_replay.json: where bench
// measures the engines in-process, loadtest measures the whole service
// under concurrent HTTP load. See docs/LOADTEST.md.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"consumelocal"
	"consumelocal/internal/obs"
)

// Config parameterises one load-test run. The zero value is not
// runnable; start from DefaultConfig.
type Config struct {
	// Addr is the base URL of a daemon to drive (e.g.
	// http://localhost:8377). Empty means spawn DaemonPath on an
	// ephemeral port and tear it down with the run.
	Addr string
	// DaemonPath is the consumelocald binary to spawn when Addr is
	// empty.
	DaemonPath string
	// Clients is the total number of concurrent clients across all
	// workload classes.
	Clients int
	// Duration is how long to keep the fleet driving load.
	Duration time.Duration
	// Rate is the aggregate offered operation rate in ops/second,
	// shared by every paced client through one token bucket. Zero or
	// negative disables pacing (closed-loop, as fast as the daemon
	// answers).
	Rate float64
	// Burst is the token-bucket capacity: how many operations may fire
	// back-to-back after an idle stretch.
	Burst int
	// Mix apportions Clients across the workload classes as a
	// producers:followers:trace ratio, e.g. "4:3:1".
	Mix string
	// WallFraction is the fraction of ingest producers that open their
	// jobs with watermark=wall — the silent-producer workload the
	// daemon's wall-clock fallback exists for.
	WallFraction float64
	// Scale sizes the shared evening-TV live trace (relative to the
	// paper's city-scale broadcast).
	Scale float64
	// Window is the ingest reporting window in trace seconds (>= 60).
	Window int64
	// Seed feeds the trace generator and the per-client jitter.
	Seed int64
	// MaxJobs is passed to a spawned daemon as -max-jobs. Zero derives
	// a quota wide enough that the fleet is not artificially starved
	// (producers + trace clients + slack).
	MaxJobs int
	// Chaos injects a fault mid-run: halfway through, the spawned
	// daemon is SIGKILLed and restarted on the same address and data
	// directory while the fleet keeps driving load. The report gains a
	// chaos section (recovery timings, restored/resumed/interrupted
	// jobs, a post-restart ledger cross-check). Requires spawn mode
	// (empty Addr) — the harness will not kill a daemon it does not own.
	Chaos bool
	// ChaosKills is how many kill/restart cycles chaos mode runs,
	// spread evenly through the run (cycle i fires at
	// Duration*(i+1)/(kills+1)). Zero defaults to one cycle; values
	// above one prove a live ingest stream survives *repeated* crashes.
	ChaosKills int
	// DataDir is passed to a spawned daemon as -data-dir. Empty with
	// Chaos set uses a temporary directory torn down with the run.
	DataDir string
	// Output is the report path. Empty skips writing the file (the
	// Report is still returned).
	Output string
	// Out receives human-readable progress lines; nil is silent.
	Out io.Writer
}

// DefaultConfig returns the acceptance-shaped run: 256 clients in a
// 4:3:1 producer:follower:trace mix for 30 seconds at 200 ops/s.
func DefaultConfig() Config {
	return Config{
		Clients:      256,
		Duration:     30 * time.Second,
		Rate:         200,
		Burst:        64,
		Mix:          "4:3:1",
		WallFraction: 0.25,
		Scale:        0.002,
		Window:       3600,
		Seed:         1,
		Output:       "BENCH_daemon.json",
	}
}

// Validate rejects configurations the harness cannot honour.
func (c *Config) Validate() error {
	if c.Addr == "" && c.DaemonPath == "" {
		return fmt.Errorf("loadgen: need -addr of a running daemon or -daemon binary to spawn")
	}
	if c.Addr != "" && !strings.HasPrefix(c.Addr, "http://") && !strings.HasPrefix(c.Addr, "https://") {
		return fmt.Errorf("loadgen: -addr %q must be a base URL (http://host:port)", c.Addr)
	}
	if c.Clients <= 0 {
		return fmt.Errorf("loadgen: -clients must be positive, got %d", c.Clients)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: -duration must be positive, got %s", c.Duration)
	}
	if c.Burst < 1 {
		return fmt.Errorf("loadgen: -burst must be at least 1, got %d", c.Burst)
	}
	if _, err := parseMix(c.Mix); err != nil {
		return err
	}
	if c.WallFraction < 0 || c.WallFraction > 1 {
		return fmt.Errorf("loadgen: -wall must be in [0,1], got %g", c.WallFraction)
	}
	if c.Scale <= 0 {
		return fmt.Errorf("loadgen: -scale must be positive, got %g", c.Scale)
	}
	if c.Window < 60 {
		return fmt.Errorf("loadgen: -window must be at least 60s, got %d", c.Window)
	}
	if c.MaxJobs < 0 {
		return fmt.Errorf("loadgen: -max-jobs must be non-negative, got %d", c.MaxJobs)
	}
	if c.Chaos && c.Addr != "" {
		return fmt.Errorf("loadgen: -chaos needs a spawned daemon (drop -addr): the harness only kills daemons it owns")
	}
	if c.ChaosKills < 0 || c.ChaosKills > 16 {
		return fmt.Errorf("loadgen: -chaos-kills must be in [0,16], got %d", c.ChaosKills)
	}
	if c.ChaosKills > 1 && !c.Chaos {
		return fmt.Errorf("loadgen: -chaos-kills needs -chaos")
	}
	return nil
}

// mix is the client apportionment across workload classes.
type mix struct {
	producers, followers, trace int
}

// parseMix parses a "p:f:t" ratio of non-negative integers, at least
// one positive.
func parseMix(s string) (mix, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return mix{}, fmt.Errorf("loadgen: -mix %q must be producers:followers:trace, e.g. 4:3:1", s)
	}
	var w [3]int
	for i, p := range parts {
		n := 0
		if p == "" {
			return mix{}, fmt.Errorf("loadgen: -mix %q has an empty component", s)
		}
		for _, c := range p {
			if c < '0' || c > '9' {
				return mix{}, fmt.Errorf("loadgen: -mix component %q is not a non-negative integer", p)
			}
			n = n*10 + int(c-'0')
			if n > 1_000_000 {
				return mix{}, fmt.Errorf("loadgen: -mix component %q is out of range", p)
			}
		}
		w[i] = n
	}
	if w[0]+w[1]+w[2] == 0 {
		return mix{}, fmt.Errorf("loadgen: -mix %q must have at least one positive component", s)
	}
	return mix{producers: w[0], followers: w[1], trace: w[2]}, nil
}

// apportion splits clients across the mix by largest remainder, then
// guarantees every positively-weighted class at least one client when
// there are enough clients to go around — a 4:3:1 mix with 6 clients
// still fields a trace submitter.
func (m mix) apportion(clients int) mix {
	w := [3]int{m.producers, m.followers, m.trace}
	total := w[0] + w[1] + w[2]
	var counts [3]int
	var fracs [3]float64
	assigned := 0
	for i, wi := range w {
		exact := float64(clients) * float64(wi) / float64(total)
		counts[i] = int(exact)
		fracs[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < clients {
		best := 0
		for i := 1; i < 3; i++ {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		counts[best]++
		fracs[best] = -1
		assigned++
	}
	// Positive weight deserves presence: steal from the largest class.
	positive := 0
	for _, wi := range w {
		if wi > 0 {
			positive++
		}
	}
	if clients >= positive {
		for i := range w {
			if w[i] > 0 && counts[i] == 0 {
				big := 0
				for k := 1; k < 3; k++ {
					if counts[k] > counts[big] {
						big = k
					}
				}
				counts[big]--
				counts[i]++
			}
		}
	}
	return mix{producers: counts[0], followers: counts[1], trace: counts[2]}
}

// Run executes one load test and returns its report. The context
// bounds the whole run: cancelling it stops the fleet early (the
// report covers what ran) and tears down a spawned daemon.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, _ := parseMix(cfg.Mix)
	counts := m.apportion(cfg.Clients)
	wallProducers := int(math.Round(cfg.WallFraction * float64(counts.producers)))

	// One shared schedule: the evening-TV live trace, pre-rendered into
	// hourly CSV batches every producer replays, and a spooled-CSV body
	// for the trace submitters. Rendering once keeps the client hot
	// loops free of per-op trace work — they only do HTTP.
	liveCfg := consumelocal.DefaultLiveTraceConfig(cfg.Scale)
	liveCfg.Seed = cfg.Seed
	tr, err := consumelocal.GenerateLiveTrace(liveCfg)
	if err != nil {
		return nil, fmt.Errorf("loadgen: generate live trace: %w", err)
	}
	batches := renderBatches(tr, cfg.Window)
	traceBody, err := renderTraceBody(tr)
	if err != nil {
		return nil, err
	}

	r := &run{
		cfg:       cfg,
		counts:    counts,
		wall:      wallProducers,
		tr:        tr,
		batches:   batches,
		traceBody: traceBody,
		pace:      newPacer(cfg.Rate, cfg.Burst),
	}
	r.initMetrics()
	r.client = &http.Client{
		Transport: &http.Transport{
			// The fleet holds one long-lived connection per client;
			// without a matching idle pool every paced op would pay a
			// fresh TCP handshake and the latency histograms would
			// measure the harness, not the daemon.
			MaxIdleConns:        cfg.Clients + 8,
			MaxIdleConnsPerHost: cfg.Clients + 8,
			IdleConnTimeout:     2 * time.Minute,
		},
	}

	base := cfg.Addr
	if base == "" {
		maxJobs := cfg.MaxJobs
		if maxJobs == 0 {
			// Every producer and trace client can hold a job at once;
			// the slack absorbs recycling overlap (finish still
			// draining while the successor job opens).
			maxJobs = counts.producers + counts.trace + 8
		}
		dataDir := cfg.DataDir
		if cfg.Chaos && dataDir == "" {
			dataDir, err = os.MkdirTemp("", "loadgen-chaos-*")
			if err != nil {
				return nil, fmt.Errorf("loadgen: chaos data dir: %w", err)
			}
			defer os.RemoveAll(dataDir)
		}
		r.spawnOpt = spawnOpts{maxJobs: maxJobs, dataDir: dataDir}
		d, err := spawnDaemon(ctx, cfg.DaemonPath, r.spawnOpt, cfg.Out)
		if err != nil {
			return nil, err
		}
		// Pin the respawn command line to the bound port, so a chaos
		// restart comes back exactly where the fleet is pointing.
		r.spawnOpt.addr = d.addr
		r.setDaemon(d)
		defer func() {
			if d := r.curDaemon(); d != nil {
				d.stop()
			}
		}()
		base = "http://" + d.addr
	}
	r.base = base

	r.logf("loadtest: %d clients (%d producers [%d wall], %d followers, %d trace) against %s for %s",
		cfg.Clients, counts.producers, wallProducers, counts.followers, counts.trace, base, cfg.Duration)
	r.logf("loadtest: workload %q: %d sessions over %ds in %d batches",
		tr.Name, len(tr.Sessions), tr.HorizonSec, len(batches))

	// Scrape the daemon before any load so the report's deltas cover
	// exactly this run even against a long-lived daemon.
	initial, err := r.scrape(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: initial /metrics scrape: %w", err)
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	started := time.Now()

	var wg sync.WaitGroup
	idx := 0
	for i := 0; i < counts.producers; i++ {
		wg.Add(1)
		go func(id int, wall bool) {
			defer wg.Done()
			r.producer(runCtx, id, wall)
		}(idx, i < wallProducers)
		idx++
	}
	for i := 0; i < counts.followers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r.follower(runCtx, id)
		}(idx)
		idx++
	}
	for i := 0; i < counts.trace; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r.traceClient(runCtx, id)
		}(idx)
		idx++
	}

	// The chaos cycle, when armed, kills and restarts the daemon at
	// half time while the fleet keeps offering load.
	var chaosRes *chaosOutcome
	chaosDone := make(chan struct{})
	if cfg.Chaos {
		go func() {
			defer close(chaosDone)
			chaosRes = r.chaosCycle(ctx, runCtx)
		}()
	} else {
		close(chaosDone)
	}

	// The supervisor samples RSS while the fleet runs and takes the
	// mid-run scrape at half time — the cross-check point where client
	// and server counters should already have diverged if they ever
	// will. In chaos mode half time is also the kill point, so the
	// scrape is best-effort against a daemon that may be mid-restart.
	var mid *serverSample
	superDone := make(chan struct{})
	go func() {
		defer close(superDone)
		midAt := time.After(cfg.Duration / 2)
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-midAt:
				if s, err := r.scrape(ctx); err == nil {
					mid = s
				}
				midAt = nil
			case <-tick.C:
				if d := r.curDaemon(); d != nil {
					d.sampleRSS()
				}
			}
		}
	}()

	//consumelocal:ignore ctxsend fleet goroutines exit on the run deadline carried by runCtx, so this join is bounded
	wg.Wait()
	//consumelocal:ignore ctxsend the supervisor closes superDone when the fleet it watches exits, which the bounded join above guarantees
	<-superDone
	//consumelocal:ignore ctxsend the chaos cycle watches runCtx at every wait, so this join is bounded by the same run deadline
	<-chaosDone
	elapsed := time.Since(started)

	// Final scrape after the fleet has gone quiet: in spawn mode no
	// other client exists, so the deltas are exact.
	final, err := r.scrape(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: final /metrics scrape: %w", err)
	}

	rep := r.buildReport(elapsed, initial, mid, final, chaosRes)
	r.logf("loadtest: %.0f sessions/s (%d accepted over %.1fs); create p95 %.1fms, batch p95/p99 %.1f/%.1fms, snapshot p95 %.1fms",
		rep.Ingest.SessionsPerSec, rep.Ingest.SessionsAccepted, rep.ElapsedSec,
		rep.Latency.Create.P95Ms, rep.Latency.Batch.P95Ms, rep.Latency.Batch.P99Ms, rep.Latency.Snapshot.P95Ms)
	r.logf("loadtest: errors: %d 5xx, %d unexpected 4xx, %d network; backpressure: %d quota 429s, %d ordering 409s, %d ops behind schedule",
		rep.Errors.HTTP5xx, rep.Errors.HTTP4xx, rep.Errors.Network,
		rep.Errors.Quota429, rep.Errors.Conflict409, rep.Errors.BehindScheduleOps)
	r.logf("loadtest: session ledger: client %d vs server %d (diff %d)",
		rep.Skew.ClientSessions, rep.Skew.ServerSessions, rep.Skew.Diff)
	if rep.Daemon != nil {
		r.logf("loadtest: daemon pid %d peak RSS %.1f MiB", rep.Daemon.PID, float64(rep.Daemon.RSSPeakBytes)/(1<<20))
	}
	if c := rep.Chaos; c != nil {
		if c.RestartError != "" {
			r.logf("loadtest: chaos: RESTART FAILED: %s", c.RestartError)
		} else {
			r.logf("loadtest: chaos: %d kill(s), first at %.1fs; relisten %.0fms, healthy %.0fms; recovered %d restored / %d resumed / %d resume failed / %d interrupted (torn tail %v); %d producers reattached; %d errors in window; ledger diff %d within bound %d: %v",
				c.Kills, c.KilledAtSec, c.RelistenMs, c.RecoveryMs,
				c.RestoredJobs, c.ResumedJobs, c.ResumeFailedJobs, c.InterruptedJobs, c.TornTail,
				rep.Ingest.ProducersReattached, rep.Errors.RestartWindow, c.LedgerDiff, c.LedgerBound, c.LedgerOK)
		}
	}
	if cfg.Output != "" {
		if err := rep.write(cfg.Output); err != nil {
			return nil, err
		}
		r.logf("loadtest: report written to %s", cfg.Output)
	}
	return rep, nil
}

// renderBatches slices the trace into per-window CSV batches, each
// carrying the watermark boundary a producer advances to after pushing
// it. Quiet windows still appear (empty CSV, live boundary) — that is
// what settles empty windows on the daemon.
type hourBatch struct {
	csv      string
	boundary int64
	sessions int
}

func renderBatches(tr *consumelocal.Trace, window int64) []hourBatch {
	var batches []hourBatch
	sessions := tr.Sessions
	for from := int64(0); from < tr.HorizonSec; from += window {
		boundary := from + window
		if boundary > tr.HorizonSec {
			boundary = tr.HorizonSec
		}
		var b strings.Builder
		n := 0
		for len(sessions) > 0 && sessions[0].StartSec < boundary {
			s := sessions[0]
			fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d\n",
				s.UserID, s.ContentID, s.ISP, s.Exchange, s.StartSec, s.DurationSec, s.Bitrate)
			sessions = sessions[1:]
			n++
		}
		batches = append(batches, hourBatch{csv: b.String(), boundary: boundary, sessions: n})
	}
	return batches
}

// renderTraceBody serialises the shared trace as the spooled-CSV job
// body the trace submitters upload.
func renderTraceBody(tr *consumelocal.Trace) (string, error) {
	var b strings.Builder
	if err := consumelocal.WriteTraceCSV(tr, &b); err != nil {
		return "", fmt.Errorf("loadgen: render trace body: %w", err)
	}
	return b.String(), nil
}

// run is the shared state of one load test: configuration, the
// pre-rendered workload, the shared pacer and HTTP client, and the
// measurement registry the clients write into.
type run struct {
	cfg       Config
	counts    mix
	wall      int
	base      string
	tr        *consumelocal.Trace
	batches   []hourBatch
	traceBody string
	pace      *pacer
	client    *http.Client

	// daemon is the currently-live spawned daemon, swapped under dmu by
	// the chaos cycle when it restarts the process; spawnOpt is kept so
	// the respawn reproduces the original command line (address pinned).
	// window marks the restart interval, during which transport errors
	// are expected and ledgered separately.
	dmu      sync.Mutex
	daemon   *daemon
	spawnOpt spawnOpts
	window   atomic.Bool

	reg       *obs.Registry
	createLat *obs.Histogram
	batchLat  *obs.Histogram
	snapLat   *obs.Histogram

	sessionsAccepted *obs.Counter
	jobsOpened       *obs.Counter
	jobsFinished     *obs.Counter
	tracesSubmitted  *obs.Counter
	snapshotLines    *obs.Counter
	followStreams    *obs.Counter
	quota429         *obs.Counter
	conflict409      *obs.Counter
	err4xx           *obs.Counter
	err5xx           *obs.Counter
	errNet           *obs.Counter
	restartErrs      *obs.Counter
	reattached       *obs.Counter
}

// curDaemon returns the live spawned daemon (nil in -addr mode).
func (r *run) curDaemon() *daemon {
	r.dmu.Lock()
	defer r.dmu.Unlock()
	return r.daemon
}

func (r *run) setDaemon(d *daemon) {
	r.dmu.Lock()
	defer r.dmu.Unlock()
	r.daemon = d
}

func (r *run) initMetrics() {
	r.reg = obs.NewRegistry()
	r.createLat = r.reg.Histogram("consumelocal_loadtest_create_latency_seconds",
		"Latency of job-opening POSTs (ingest and spooled trace).", obs.LatencyBuckets)
	r.batchLat = r.reg.Histogram("consumelocal_loadtest_batch_latency_seconds",
		"Latency of session-batch POSTs.", obs.LatencyBuckets)
	r.snapLat = r.reg.Histogram("consumelocal_loadtest_snapshot_latency_seconds",
		"Snapshot follower latency: time to first NDJSON line, then inter-line gaps.", obs.LatencyBuckets)
	r.sessionsAccepted = r.reg.Counter("consumelocal_loadtest_sessions_accepted_total",
		"Sessions the daemon acknowledged (pushed counts, including 409 prefixes).")
	r.jobsOpened = r.reg.Counter("consumelocal_loadtest_ingest_jobs_opened_total",
		"Ingest jobs opened by producers.")
	r.jobsFinished = r.reg.Counter("consumelocal_loadtest_ingest_jobs_finished_total",
		"Ingest jobs sealed by producers.")
	r.tracesSubmitted = r.reg.Counter("consumelocal_loadtest_trace_jobs_submitted_total",
		"Spooled trace jobs submitted.")
	r.snapshotLines = r.reg.Counter("consumelocal_loadtest_snapshot_lines_total",
		"NDJSON snapshot lines received by followers.")
	r.followStreams = r.reg.Counter("consumelocal_loadtest_follow_streams_total",
		"Snapshot follow streams opened.")
	r.quota429 = r.reg.Counter("consumelocal_loadtest_backpressure_429_total",
		"Submissions refused by the daemon quota (backpressure stalls).")
	r.conflict409 = r.reg.Counter("consumelocal_loadtest_conflict_409_total",
		"Batch pushes rejected for watermark ordering (racing the wall clock).")
	r.err4xx = r.reg.Counter("consumelocal_loadtest_http_4xx_total",
		"Unexpected 4xx responses (excluding counted 429/409).")
	r.err5xx = r.reg.Counter("consumelocal_loadtest_http_5xx_total",
		"5xx responses — the run's failure headline.")
	r.errNet = r.reg.Counter("consumelocal_loadtest_network_errors_total",
		"Transport-level request failures (excluding run-shutdown cancellations).")
	r.restartErrs = r.reg.Counter("consumelocal_loadtest_restart_window_errors_total",
		"Transport failures inside the chaos restart window — the injected fault, kept out of the network-error ledger.")
	r.reattached = r.reg.Counter("consumelocal_loadtest_producers_reattached_total",
		"Producer reattachments to crash-surviving ingest jobs: journalled-but-unacknowledged rows credited and skipped, the stream continued.")
}

func (r *run) logf(format string, args ...any) {
	if r.cfg.Out != nil {
		fmt.Fprintf(r.cfg.Out, format+"\n", args...)
	}
}

package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// daemon is a consumelocald subprocess the harness spawned for the
// run: bound address parsed from its startup log, peak RSS sampled
// from /proc while the fleet drives it, SIGTERM + drain on teardown.
type daemon struct {
	cmd     *exec.Cmd
	addr    string
	rssPeak atomic.Int64
	done    chan error
}

// spawnOpts is everything a daemon (re)spawn needs. The chaos cycle
// keeps the run's copy and respawns with addr pinned to the first
// daemon's bound port, so the fleet's URLs stay valid across the kill.
type spawnOpts struct {
	addr    string
	maxJobs int
	dataDir string
}

// spawnDaemon launches the consumelocald binary at path and waits for
// it to report readiness via its structured "consumelocald listening"
// log line — the same contract metrics-smoke.sh relies on. The
// daemon's stderr keeps streaming to out (when non-nil) for
// post-mortems.
func spawnDaemon(ctx context.Context, path string, opt spawnOpts, out io.Writer) (*daemon, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("loadgen: daemon binary: %w", err)
	}
	addr := opt.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	args := []string{
		"-addr", addr,
		"-max-jobs", strconv.Itoa(opt.maxJobs),
		"-drain", "5s",
	}
	if opt.dataDir != "" {
		args = append(args, "-data-dir", opt.dataDir)
	}
	cmd := exec.Command(path, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("loadgen: start daemon: %w", err)
	}
	d := &daemon{cmd: cmd, done: make(chan error, 1)}

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, `msg="consumelocald listening"`) {
				if addr := logAttr(line, "addr"); addr != "" {
					select {
					case addrc <- addr:
					default:
					}
				}
			}
			if out != nil {
				fmt.Fprintln(out, "  [daemon]", line)
			}
		}
	}()
	go func() { d.done <- cmd.Wait() }()

	select {
	case addr := <-addrc:
		d.addr = addr
		d.sampleRSS()
		return d, nil
	case err := <-d.done:
		return nil, fmt.Errorf("loadgen: daemon exited before listening: %v", err)
	case <-ctx.Done():
		cmd.Process.Kill()
		return nil, ctx.Err()
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("loadgen: daemon did not report a listening address within 10s")
	}
}

// logAttr extracts a slog TextHandler key=value attribute from a log
// line. Values the daemon logs for addr are never quoted.
func logAttr(line, key string) string {
	for _, field := range strings.Fields(line) {
		if v, ok := strings.CutPrefix(field, key+"="); ok {
			return strings.Trim(v, `"`)
		}
	}
	return ""
}

// sampleRSS reads the daemon's current VmRSS from /proc and keeps the
// peak. Best-effort: on platforms without /proc the peak stays at the
// zero the report renders honestly.
func (d *daemon) sampleRSS() {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", d.cmd.Process.Pid))
	if err != nil {
		return
	}
	for _, line := range strings.Split(string(data), "\n") {
		rest, ok := strings.CutPrefix(line, "VmRSS:")
		if !ok {
			continue
		}
		fields := strings.Fields(rest) // e.g. ["123456", "kB"]
		if len(fields) < 1 {
			return
		}
		kb, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return
		}
		bytes := kb << 10
		for {
			old := d.rssPeak.Load()
			if bytes <= old || d.rssPeak.CompareAndSwap(old, bytes) {
				return
			}
		}
	}
}

// kill is the fault injection: SIGKILL, no drain, no warning — the
// crash the journal exists for. It waits only for process reaping, so
// the caller can time the restart from the instant the daemon died.
func (d *daemon) kill() {
	if d.cmd.Process == nil {
		return
	}
	d.cmd.Process.Kill()
	<-d.done
}

// stop shuts the daemon down the way an operator would: SIGTERM, let
// the graceful-drain path run, escalate to SIGKILL only if it hangs.
func (d *daemon) stop() {
	if d.cmd.Process == nil {
		return
	}
	d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-d.done:
	case <-time.After(15 * time.Second):
		d.cmd.Process.Kill()
		<-d.done
	}
}

package loadgen

import (
	"context"
	"sync"
	"time"
)

// pacer is the shared token bucket shaping the fleet's offered load
// into an open-loop arrival process: tokens accrue at rate per second
// up to burst, every paced operation spends one, and a client whose
// token is not yet banked sleeps until it is. Because the bucket is
// shared, the rate bounds the whole fleet, not each client — the mix
// decides who gets the tokens, contention decides when.
//
// The bucket also measures the other direction: when a refill finds
// the bucket already full, the fleet failed to consume tokens as fast
// as they were offered — it is running behind the intended schedule
// (the daemon, the network, or the harness itself is the bottleneck).
// Those dropped tokens are reported as behind-schedule ops.
type pacer struct {
	rate  float64 // tokens per second; <= 0 disables pacing
	burst float64

	mu       sync.Mutex
	tokens   float64
	last     time.Time
	overflow float64
}

func newPacer(rate float64, burst int) *pacer {
	return &pacer{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
}

// wait blocks until a token is available or ctx is done. It returns
// ctx.Err() on cancellation; nil means the caller may fire one op.
func (p *pacer) wait(ctx context.Context) error {
	if p.rate <= 0 {
		return ctx.Err()
	}
	for {
		p.mu.Lock()
		now := time.Now()
		refill := now.Sub(p.last).Seconds() * p.rate
		p.last = now
		p.tokens += refill
		if p.tokens > p.burst {
			// The overflow is load the fleet was offered but never
			// drove: tokens lost to saturation.
			p.overflow += p.tokens - p.burst
			p.tokens = p.burst
		}
		if p.tokens >= 1 {
			p.tokens--
			p.mu.Unlock()
			return nil
		}
		need := time.Duration((1 - p.tokens) / p.rate * float64(time.Second))
		p.mu.Unlock()

		timer := time.NewTimer(need)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// behindSchedule reports how many offered tokens went unconsumed —
// zero when the fleet kept up with the configured rate.
func (p *pacer) behindSchedule() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(p.overflow)
}

package loadgen

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// opGrace bounds a single HTTP operation beyond the run deadline, so
// in-flight requests finish (and are measured) instead of being torn
// down mid-body when the run clock expires.
const opGrace = 10 * time.Second

// jobInfo is the slice of the daemon's jobView the clients need.
type jobInfo struct {
	ID        int    `json:"id"`
	Status    string `json:"status"`
	Ingest    bool   `json:"ingest"`
	Watermark int64  `json:"watermark_sec"`
	Pushed    int64  `json:"pushed"`
}

// opResult is one measured HTTP operation.
type opResult struct {
	status     int
	body       []byte
	elapsed    time.Duration
	retryAfter time.Duration // parsed Retry-After, zero when absent
	err        error
}

// do fires one HTTP request with the operation grace period, reads the
// (bounded) body, and records the latency into hist. Error accounting
// is centralised here: 5xx, unexpected 4xx and transport failures land
// in their counters; 429 and 409 are counted as workload signals, and
// statuses listed in expect (a poll's 404 after eviction) are part of
// the protocol and counted nowhere.
func (r *run) do(ctx context.Context, method, rawURL, contentType, body string, hist func(float64), expect ...int) opResult {
	opCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), opGrace)
	defer cancel()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(opCtx, method, rawURL, rd)
	if err != nil {
		return opResult{err: err}
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	start := time.Now()
	resp, err := r.client.Do(req)
	elapsed := time.Since(start)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			// During the chaos restart window the daemon is deliberately
			// dead: refused connections are the fault being injected,
			// not harness noise, and land in their own ledger so the
			// network counter keeps meaning "unexpected".
			if r.window.Load() {
				r.restartErrs.Inc()
			} else {
				r.errNet.Inc()
			}
		}
		return opResult{elapsed: elapsed, err: err}
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if hist != nil {
		hist(elapsed.Seconds())
	}
	var retryAfter time.Duration
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, perr := strconv.Atoi(v); perr == nil && secs >= 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	expected := false
	for _, code := range expect {
		if resp.StatusCode == code {
			expected = true
		}
	}
	switch {
	case expected:
	case resp.StatusCode >= 500:
		r.err5xx.Inc()
	case resp.StatusCode == http.StatusTooManyRequests:
		r.quota429.Inc()
	case resp.StatusCode == http.StatusConflict:
		r.conflict409.Inc()
	case resp.StatusCode >= 400:
		r.err4xx.Inc()
	}
	return opResult{status: resp.StatusCode, body: raw, elapsed: elapsed, retryAfter: retryAfter}
}

// ingestJobURL builds the job-opening URL for this run's shared trace.
func (r *run) ingestJobURL(name string, wall bool) string {
	q := url.Values{}
	q.Set("source", "ingest")
	q.Set("name", name)
	q.Set("horizon", fmt.Sprint(r.tr.HorizonSec))
	q.Set("users", fmt.Sprint(r.tr.NumUsers))
	q.Set("content", fmt.Sprint(r.tr.NumContent))
	q.Set("isps", fmt.Sprint(r.tr.NumISPs))
	q.Set("window", fmt.Sprint(r.cfg.Window))
	if wall {
		q.Set("watermark", "wall")
		q.Set("wall_interval", "50ms")
		// Walk the horizon in roughly half the run, so wall jobs both
		// settle windows from the clock and recycle within the run.
		rate := float64(r.tr.HorizonSec) / (r.cfg.Duration.Seconds() / 2)
		if rate < 1 {
			rate = 1
		}
		q.Set("wall_rate", fmt.Sprint(rate))
	}
	return r.base + "/v1/jobs?" + q.Encode()
}

// producer drives one live ingest client: open a job, replay the
// shared schedule batch by batch (paced), seal it, reopen. Non-wall
// producers advance the watermark with every batch, the way a healthy
// broadcast system does. Wall producers open with watermark=wall and
// never send one — the silent-producer workload — racing the daemon's
// clock with their pushes, so late batches legitimately collect 409
// ordering rejections whose accepted prefixes still count.
func (r *run) producer(ctx context.Context, id int, wall bool) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(id)))
	attempt := 0
	for ctx.Err() == nil {
		if err := r.pace.wait(ctx); err != nil {
			return
		}
		res := r.do(ctx, http.MethodPost, r.ingestJobURL(fmt.Sprintf("loadgen-p%d", id), wall), "text/csv", "", r.createLat.Observe)
		if res.status != http.StatusAccepted {
			// Transport failure, quota 429, drain 503, or anything else
			// unexpected: back off (honouring Retry-After) before
			// re-offering, escalating while the refusals continue.
			transientRetry.sleep(ctx, rng, attempt, res.retryAfter)
			attempt++
			continue
		}
		attempt = 0
		var job jobInfo
		if err := json.Unmarshal(res.body, &job); err != nil {
			r.errNet.Inc()
			continue
		}
		r.jobsOpened.Inc()

		if alive := r.pushSchedule(ctx, rng, job.ID, wall); !alive {
			// The job died under us (idle watchdog, cancel); open a
			// fresh one.
			continue
		}

		// Seal the stream; the job drains to done on the daemon and is
		// eventually evicted. Unpaced: it is the producer's hang-up,
		// not offered load.
		if res := r.do(ctx, http.MethodPost, fmt.Sprintf("%s/v1/jobs/%d/finish", r.base, job.ID), "", "", nil,
			http.StatusNotFound, http.StatusConflict); res.status == http.StatusOK {
			r.jobsFinished.Inc()
		}
	}
}

// pushSchedule replays the shared batch schedule into one ingest job,
// pacing every push. It returns false when the job disappeared
// mid-schedule and the producer should recycle without sealing. In
// chaos mode a failed push is re-offered through the retry policy —
// but only to a job that is still running, because after a crash the
// recovered job is settled and the honest move is to recycle, not to
// re-ingest sessions into a new job the ledger never promised.
func (r *run) pushSchedule(ctx context.Context, rng *rand.Rand, jobID int, wall bool) bool {
	sessionsURL := fmt.Sprintf("%s/v1/jobs/%d/sessions", r.base, jobID)
	// acked is the cumulative session count the daemon has acknowledged
	// to this producer — the client half of the reattach protocol. After
	// a crash, a resumed job's total_pushed above acked is journalled
	// progress the producer never saw an ack for.
	acked := int64(0)
	for _, b := range r.batches {
		if ctx.Err() != nil {
			return true
		}
		if err := r.pace.wait(ctx); err != nil {
			return true
		}
		pushURL := sessionsURL
		if !wall {
			pushURL = fmt.Sprintf("%s?watermark=%d", sessionsURL, b.boundary)
		}
		body := b.csv
		attempt := 0
		for {
			pres := r.do(ctx, http.MethodPost, pushURL, "text/csv", body, r.batchLat.Observe,
				http.StatusNotFound, http.StatusGone)
			if pres.status == http.StatusNotFound || pres.status == http.StatusGone {
				return false
			}
			if pres.status == http.StatusOK || pres.status == http.StatusConflict {
				// 409s report the prefix that landed before the ordering
				// check tripped; it was genuinely ingested.
				var out struct {
					Pushed *int64 `json:"pushed"`
					Total  *int64 `json:"total_pushed"`
				}
				if json.Unmarshal(pres.body, &out) == nil && out.Pushed != nil {
					r.sessionsAccepted.Add(float64(*out.Pushed))
					if out.Total != nil {
						acked = *out.Total
					} else {
						acked += *out.Pushed
					}
				} else if pres.status == http.StatusConflict {
					// A 409 without a pushed count is not the ordering
					// conflict — it is a settled job (e.g. one recovered
					// as failed after a restart) refusing work outright.
					return false
				}
				break
			}
			// Transport failure or transient refusal. Outside chaos mode
			// the old behaviour stands: the error is ledgered and the
			// schedule moves on. In chaos mode the push is re-offered —
			// the batch is indeterminate (the daemon may have journalled
			// it before dying), which is exactly the slack the report's
			// ledger bound accounts for.
			if !r.cfg.Chaos || !retryable(pres) || attempt >= maxRetryAttempts || ctx.Err() != nil {
				break
			}
			if transientRetry.sleep(ctx, rng, attempt, pres.retryAfter) != nil {
				return true
			}
			attempt++
			if pres.err != nil {
				// The socket died mid-push — possibly the crash under
				// test. Probe before re-offering: a job recovered as
				// settled means recycle, while a job the restarted daemon
				// *resumed* is still running with its journalled progress
				// — including, possibly, the very batch whose ack was
				// lost. Reattach: credit the rows the journal kept, skip
				// them, and resend only the remainder.
				v, alive, ok := r.probeJob(ctx, rng, jobID)
				if !ok {
					continue
				}
				if !alive {
					return false
				}
				if skip := v.Pushed - acked; skip > 0 {
					r.sessionsAccepted.Add(float64(skip))
					r.reattached.Inc()
					acked = v.Pushed
					body = skipRows(body, skip)
					if body == "" {
						// The whole batch (watermark included — it rides
						// the final journalled chunk) survived the crash.
						break
					}
				}
			}
		}
	}
	return true
}

// skipRows drops the first n CSV rows of a batch body — the rows a
// resumed job's journal already accounts for.
func skipRows(csv string, n int64) string {
	for ; n > 0 && csv != ""; n-- {
		i := strings.IndexByte(csv, '\n')
		if i < 0 {
			return ""
		}
		csv = csv[i+1:]
	}
	return csv
}

// probeJob polls one job's view through the retry policy. ok is false
// when the daemon could not be reached at all; a missing (evicted) job
// reports not alive.
func (r *run) probeJob(ctx context.Context, rng *rand.Rand, jobID int) (v jobInfo, alive, ok bool) {
	res := r.doIdempotent(ctx, rng, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%d", r.base, jobID), nil,
		http.StatusNotFound)
	if res.err != nil {
		return v, false, false
	}
	if res.status == http.StatusNotFound {
		return v, false, true
	}
	if res.status == http.StatusOK && json.Unmarshal(res.body, &v) == nil {
		return v, v.Status == "running", true
	}
	return v, false, false
}

// follower drives one snapshot client: find a running job, stream its
// NDJSON snapshots, and time the stream — first line, then every
// inter-line gap — into the snapshot histogram. When the stream ends
// (job settled, evicted, or cancelled) it picks another.
func (r *run) follower(ctx context.Context, id int) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(id)))
	for ctx.Err() == nil {
		job, ok := r.pickJob(ctx, rng)
		if !ok {
			transientRetry.sleep(ctx, rng, 0, 0)
			continue
		}
		r.followStreams.Inc()
		r.followOne(ctx, job)
	}
}

// pickJob lists the daemon's jobs and picks a random running one,
// preferring ingest jobs (they live long enough to follow).
func (r *run) pickJob(ctx context.Context, rng *rand.Rand) (jobInfo, bool) {
	res := r.doIdempotent(ctx, rng, http.MethodGet, r.base+"/v1/jobs", nil)
	if res.err != nil || res.status != http.StatusOK {
		return jobInfo{}, false
	}
	var jobs []jobInfo
	if err := json.Unmarshal(res.body, &jobs); err != nil {
		return jobInfo{}, false
	}
	var running, ingest []jobInfo
	for _, j := range jobs {
		if j.Status != "running" {
			continue
		}
		running = append(running, j)
		if j.Ingest {
			ingest = append(ingest, j)
		}
	}
	pool := ingest
	if len(pool) == 0 {
		pool = running
	}
	if len(pool) == 0 {
		return jobInfo{}, false
	}
	return pool[rng.Intn(len(pool))], true
}

// followOne streams one job's snapshots until the stream closes or the
// run ends. The request is tied to the run context directly — a
// follower mid-stream at the deadline just stops, it is not an error.
func (r *run) followOne(ctx context.Context, job jobInfo) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%d/snapshots", r.base, job.ID), nil)
	if err != nil {
		return
	}
	start := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			r.errNet.Inc()
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= 500 {
			r.err5xx.Inc()
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	last := start
	for sc.Scan() {
		now := time.Now()
		r.snapLat.Observe(now.Sub(last).Seconds())
		last = now
		r.snapshotLines.Inc()
	}
}

// traceClient drives one spooled-CSV submitter: upload the shared
// trace as a job body (paced), then poll it to completion. A 404 on
// poll is terminal success — the daemon evicted the finished job to
// make room, which is exactly what it should do under this churn.
func (r *run) traceClient(ctx context.Context, id int) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(id)))
	attempt := 0
	for ctx.Err() == nil {
		if err := r.pace.wait(ctx); err != nil {
			return
		}
		res := r.do(ctx, http.MethodPost, r.base+"/v1/jobs?name=loadgen-t"+fmt.Sprint(id), "text/csv", r.traceBody, r.createLat.Observe)
		if res.status != http.StatusAccepted {
			transientRetry.sleep(ctx, rng, attempt, res.retryAfter)
			attempt++
			continue
		}
		attempt = 0
		var job jobInfo
		if err := json.Unmarshal(res.body, &job); err != nil {
			r.errNet.Inc()
			continue
		}
		r.tracesSubmitted.Inc()

		for ctx.Err() == nil {
			pres := r.doIdempotent(ctx, rng, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%d", r.base, job.ID), nil,
				http.StatusNotFound)
			if pres.status == http.StatusNotFound {
				break
			}
			var v jobInfo
			if pres.status == http.StatusOK && json.Unmarshal(pres.body, &v) == nil {
				if v.Status != "running" {
					break
				}
			}
			select {
			case <-ctx.Done():
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
}

package loadgen

import (
	"context"
	"math/rand"
	"net/http"
	"time"
)

// retryPolicy is the fleet-wide backoff schedule for transient
// refusals: capped exponential with full jitter, preferring the
// server's own Retry-After when it sent one. One policy for every
// client class keeps the fleet's reaction to backpressure uniform —
// and keeps a restarting daemon from being stampeded the instant it
// binds.
type retryPolicy struct {
	base time.Duration // attempt-0 ceiling
	cap  time.Duration // ceiling the exponential never exceeds
}

// transientRetry is the policy for quota 429s, drain 503s and
// chaos-window transport errors.
var transientRetry = retryPolicy{base: 50 * time.Millisecond, cap: 2 * time.Second}

// maxRetryAttempts bounds how long a producer re-offers the same batch
// across a daemon restart before declaring the job dead. At the
// transientRetry schedule this spans several seconds — comfortably
// longer than a restart+recovery, comfortably shorter than the run.
const maxRetryAttempts = 6

// delay picks the sleep before retry number attempt (0-based).
// retryAfter, when positive, is the server's Retry-After and wins
// (capped); otherwise the delay is drawn uniformly from (0, min(cap,
// base<<attempt)] — full jitter, so a fleet refused together does not
// return together.
func (p retryPolicy) delay(rng *rand.Rand, attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		if retryAfter > p.cap {
			return p.cap
		}
		return retryAfter
	}
	ceil := p.cap
	if attempt < 20 {
		if d := p.base << attempt; d < ceil {
			ceil = d
		}
	}
	return time.Duration(rng.Int63n(int64(ceil))) + time.Millisecond
}

// sleep blocks for delay(...) or until ctx is cancelled.
func (p retryPolicy) sleep(ctx context.Context, rng *rand.Rand, attempt int, retryAfter time.Duration) error {
	t := time.NewTimer(p.delay(rng, attempt, retryAfter))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryable reports whether an operation outcome is worth re-offering:
// a transport failure, a quota 429, or a draining daemon's 503. All
// three are "try again shortly", none is a bug.
func retryable(res opResult) bool {
	if res.err != nil {
		return true
	}
	return res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable
}

// doIdempotent fires an idempotent operation (GETs, and POSTs the
// daemon treats as no-ops to repeat) through the retry policy: up to
// maxRetryAttempts, honouring Retry-After, giving up on ctx or on any
// non-retryable outcome. The last attempt's result is returned either
// way, so callers still see the terminal status.
func (r *run) doIdempotent(ctx context.Context, rng *rand.Rand, method, rawURL string, hist func(float64), expect ...int) opResult {
	var res opResult
	for attempt := 0; attempt < maxRetryAttempts; attempt++ {
		res = r.do(ctx, method, rawURL, "", "", hist, expect...)
		if !retryable(res) {
			return res
		}
		if err := transientRetry.sleep(ctx, rng, attempt, res.retryAfter); err != nil {
			return res
		}
	}
	return res
}

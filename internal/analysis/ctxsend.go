package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// CtxSend enforces the engine and load-harness loop discipline: inside
// a function that carries a context.Context — a declared ctx parameter,
// or a function literal that captures one — every channel send,
// receive or range, and every blocking sync call (WaitGroup.Wait,
// Cond.Wait), must either sit in a select that also has a ctx.Done()
// case (or a default case, making it non-blocking), or carry an
// explicit //consumelocal:ignore ctxsend waiver justifying why it
// cannot stall cancellation.
//
// This is the invariant that keeps StreamContext's promise — "every
// pipeline goroutine exits even if the snapshot consumer has walked
// away" — true as the engine grows workers: a raw channel op in a ctx
// function is exactly how a cancelled replay ends up wedged.
var CtxSend = &analysis.Analyzer{
	Name: "ctxsend",
	Doc:  "channel ops in context-carrying functions must select on ctx.Done() (internal/engine, internal/loadgen)",
	Run:  runCtxSend,
}

func init() {
	CtxSend.Flags.String("packages", "internal/engine,internal/loadgen,internal/joblog",
		"comma-separated package path suffixes the check applies to (empty: all packages)")
}

func runCtxSend(pass *analysis.Pass) (any, error) {
	scope := pass.Analyzer.Flags.Lookup("packages").Value.String()
	if !pkgInScope(pass.Pkg.Path(), scope) {
		return nil, nil
	}
	ignores := parseIgnores(pass)
	for _, f := range sourceFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil || !carriesContext(pass, n, body) {
				return true
			}
			checkCtxBody(pass, ignores, body)
			return true
		})
	}
	return nil, nil
}

// carriesContext reports whether fn declares a context.Context
// parameter or (for literals) references a context-typed variable from
// an enclosing scope.
func carriesContext(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) bool {
	var ftyp *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ftyp = fn.Type
	case *ast.FuncLit:
		ftyp = fn.Type
	}
	if ftyp.Params != nil {
		for _, field := range ftyp.Params.List {
			if t := pass.TypesInfo.TypeOf(field.Type); t != nil && isContextType(t) {
				return true
			}
		}
	}
	if _, ok := fn.(*ast.FuncLit); !ok {
		return false
	}
	captures := false
	ast.Inspect(body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && isContextType(obj.Type()) {
			captures = true
		}
		return true
	})
	return captures
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkCtxBody flags unguarded blocking ops in one function body,
// without descending into nested function literals (they are checked
// on their own, with their own capture test).
func checkCtxBody(pass *analysis.Pass, ignores ignoreIndex, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if selectIsGuarded(pass, n) {
				// The comm clauses themselves are fine; their bodies are
				// ordinary code and keep being inspected.
				for _, clause := range n.Body.List {
					cc := clause.(*ast.CommClause)
					for _, s := range cc.Body {
						checkCtxStmt(pass, ignores, s)
					}
				}
				return false
			}
			ignores.report(pass, pass.Analyzer.Name, n.Pos(),
				"select in a context-carrying function has neither a ctx.Done() case nor a default case")
			for _, clause := range n.Body.List {
				for _, s := range clause.(*ast.CommClause).Body {
					checkCtxStmt(pass, ignores, s)
				}
			}
			return false
		case *ast.SendStmt:
			ignores.report(pass, pass.Analyzer.Name, n.Pos(),
				"channel send in a context-carrying function outside a ctx-guarded select")
			return true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && !isDoneCall(pass, n.X) {
				ignores.report(pass, pass.Analyzer.Name, n.Pos(),
					"channel receive in a context-carrying function outside a ctx-guarded select")
			}
			return true
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					ignores.report(pass, pass.Analyzer.Name, n.Pos(),
						"range over a channel in a context-carrying function cannot observe ctx cancellation")
				}
			}
			return true
		case *ast.CallExpr:
			if name, ok := blockingSyncCall(pass, n); ok {
				ignores.report(pass, pass.Analyzer.Name, n.Pos(),
					"%s blocks without observing ctx cancellation", name)
			}
			return true
		}
		return true
	})
}

// checkCtxStmt applies checkCtxBody's rules to a single statement
// (used for the bodies of guarded select clauses).
func checkCtxStmt(pass *analysis.Pass, ignores ignoreIndex, s ast.Stmt) {
	checkCtxBody(pass, ignores, &ast.BlockStmt{List: []ast.Stmt{s}})
}

// selectIsGuarded reports whether a select has a default case or a
// case receiving from ctx.Done().
func selectIsGuarded(pass *analysis.Pass, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc := clause.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default case: non-blocking
		}
		var recv ast.Expr
		switch c := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = c.X
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				recv = c.Rhs[0]
			}
		}
		if u, ok := recv.(*ast.UnaryExpr); ok && u.Op.String() == "<-" && isDoneCall(pass, u.X) {
			return true
		}
	}
	return false
}

// isDoneCall reports whether e is ctx.Done() for a context-typed ctx.
func isDoneCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	return t != nil && isContextType(t)
}

// blockingSyncCall reports whether call is a blocking sync primitive
// that cannot be guarded by a select: sync.WaitGroup.Wait or
// sync.Cond.Wait.
func blockingSyncCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return "", false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	switch obj.Name() {
	case "WaitGroup":
		return "sync.WaitGroup.Wait", true
	case "Cond":
		return "sync.Cond.Wait", true
	}
	return "", false
}

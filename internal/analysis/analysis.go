// Package analysis is the repo's static-analysis suite: five
// go/analysis analyzers that turn the prose contracts the hot path and
// the daemon rely on — borrowed scratch buffers, ctx-guarded channel
// operations, allocation-free hot functions, metric naming, lock scope
// — into machine-checked invariants. cmd/consumelocal-vet packages the
// suite as a vet tool, so the same checks run standalone and under
// `go vet -vettool=`.
//
// The analyzers are driven by three marker comments (grammar in
// docs/LINT.md):
//
//	//consumelocal:borrowed [param ...|return]
//	//consumelocal:hotpath
//	//consumelocal:ignore <analyzer> <reason>
//
// borrowed declares a borrow seam: a function whose listed parameters
// (or result, with "return") are owned by the callee/caller only for
// the duration of the call. hotpath opts a function into the
// allocation lint. ignore waives one finding on the marked line with a
// mandatory reason; every waiver is listed by the driver's ledger
// (consumelocal-vet -ledger) so CI can count and print them.
//
// All five analyzers skip _test.go files: the invariants they encode
// protect production hot paths and daemon loops, and tests routinely
// (and legitimately) copy borrowed data, block without a context, or
// register throwaway metrics.
package analysis

import "golang.org/x/tools/go/analysis"

// All returns the full suite in a stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		BorrowCheck,
		CtxSend,
		HotAlloc,
		MetricDecl,
		LockScope,
	}
}

package analysis

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// LockScope enforces the daemon and job-registry locking discipline:
// while a sync.Mutex or sync.RWMutex is held, a function must not
// block on the outside world. Flagged while a lock is held:
//
//   - channel sends, receives, ranges, and blocking selects (a select
//     with a default case is non-blocking and allowed; close() never
//     blocks and is allowed — it is how broadcastLocked works),
//   - sync.WaitGroup.Wait (sync.Cond.Wait is allowed: it releases the
//     mutex while waiting — that is the ingest queue's whole design),
//   - HTTP and body I/O: io.Copy/ReadAll/WriteString, Read/Write
//     calls on io.Reader/io.Writer-shaped values (request bodies,
//     response writers), and http.Client round-trips.
//
// The tracking is syntactic and per-function: a lock acquired and
// released across function boundaries is not modelled (the repo has
// none), and branch-local unlocks do not propagate out of their
// branch. //consumelocal:ignore lockscope waives deliberate cases.
var LockScope = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "no mutex held across channel ops, Wait, or HTTP/body I/O (cmd/consumelocald and the job registry)",
	Run:  runLockScope,
}

func init() {
	LockScope.Flags.String("packages", "cmd/consumelocald,consumelocal,internal/joblog",
		"comma-separated package path suffixes the check applies to (empty: all packages)")
}

func runLockScope(pass *analysis.Pass) (any, error) {
	scope := pass.Analyzer.Flags.Lookup("packages").Value.String()
	if !pkgInScope(pass.Pkg.Path(), scope) {
		return nil, nil
	}
	ignores := parseIgnores(pass)
	for _, f := range sourceFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					walkLocked(pass, ignores, fn.Body.List, newLockState(pass))
				}
			case *ast.FuncLit:
				walkLocked(pass, ignores, fn.Body.List, newLockState(pass))
				return false
			}
			return true
		})
	}
	return nil, nil
}

// lockState tracks which mutexes are held at the current statement,
// keyed by the printed receiver expression (s.mu, j.mu, ...).
type lockState struct {
	pass *analysis.Pass
	held map[string]token.Pos // lock site, for the diagnostic
}

func newLockState(pass *analysis.Pass) *lockState {
	return &lockState{pass: pass, held: make(map[string]token.Pos)}
}

func (ls *lockState) clone() *lockState {
	c := newLockState(ls.pass)
	for k, v := range ls.held {
		c.held[k] = v
	}
	return c
}

func (ls *lockState) anyHeld() (string, token.Pos, bool) {
	for k, pos := range ls.held {
		return k, pos, true
	}
	return "", token.NoPos, false
}

// walkLocked processes a statement list in order, updating the held
// set on Lock/Unlock statements and flagging blocking operations while
// any lock is held. Nested blocks and branches are walked with a clone
// of the state: a branch-local unlock is honoured inside the branch
// but conservatively forgotten after it.
func walkLocked(pass *analysis.Pass, ignores ignoreIndex, stmts []ast.Stmt, ls *lockState) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if recv, op, ok := mutexOp(pass, s.X); ok {
				switch op {
				case "Lock", "RLock":
					ls.held[recv] = s.Pos()
				case "Unlock", "RUnlock":
					delete(ls.held, recv)
				}
				continue
			}
			checkLockedNode(pass, ignores, s.X, ls)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held for the rest of the
			// function: the held entry stays, which is exactly right.
			// Other deferred calls run after the walk; skip their bodies.
			if _, op, ok := mutexOp(pass, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
				continue
			}
		case *ast.BlockStmt:
			walkLocked(pass, ignores, s.List, ls.clone())
		case *ast.IfStmt:
			if s.Init != nil {
				checkLockedNode(pass, ignores, s.Init, ls)
			}
			checkLockedNode(pass, ignores, s.Cond, ls)
			walkLocked(pass, ignores, s.Body.List, ls.clone())
			if s.Else != nil {
				walkLocked(pass, ignores, []ast.Stmt{s.Else}, ls.clone())
			}
		case *ast.ForStmt:
			walkLocked(pass, ignores, s.Body.List, ls.clone())
		case *ast.RangeStmt:
			checkLockedNode(pass, ignores, s.X, ls)
			if recv, lockPos, held := ls.anyHeld(); held {
				if t := pass.TypesInfo.TypeOf(s.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						ignores.report(pass, pass.Analyzer.Name, s.Pos(),
							"range over channel while %s is held (locked at line %d)",
							recv, pass.Fset.Position(lockPos).Line)
					}
				}
			}
			walkLocked(pass, ignores, s.Body.List, ls.clone())
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			checkLockedNode(pass, ignores, s, ls)
		case *ast.SelectStmt:
			checkLockedNode(pass, ignores, s, ls)
		default:
			checkLockedNode(pass, ignores, s, ls)
		}
	}
}

// checkLockedNode flags blocking operations under n while a lock is
// held. Function literals are skipped: they run on their own stack at
// their own time, with their own (empty) lock state.
func checkLockedNode(pass *analysis.Pass, ignores ignoreIndex, n ast.Node, ls *lockState) {
	recv, lockPos, heldAny := ls.anyHeld()
	if !heldAny {
		return
	}
	lockLine := pass.Fset.Position(lockPos).Line
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			ignores.report(pass, pass.Analyzer.Name, m.Pos(),
				"channel send while %s is held (locked at line %d)", recv, lockLine)
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				ignores.report(pass, pass.Analyzer.Name, m.Pos(),
					"channel receive while %s is held (locked at line %d)", recv, lockLine)
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(m.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					ignores.report(pass, pass.Analyzer.Name, m.Pos(),
						"range over channel while %s is held (locked at line %d)", recv, lockLine)
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(m) {
				ignores.report(pass, pass.Analyzer.Name, m.Pos(),
					"blocking select while %s is held (locked at line %d)", recv, lockLine)
			}
			// The comm operations themselves are non-blocking under a
			// default case (and already covered by the select diagnostic
			// otherwise); only the clause bodies need inspection.
			for _, clause := range m.Body.List {
				for _, s := range clause.(*ast.CommClause).Body {
					checkLockedNode(pass, ignores, s, ls)
				}
			}
			return false
		case *ast.CallExpr:
			if name, ok := blockingLockedCall(pass, m); ok {
				ignores.report(pass, pass.Analyzer.Name, m.Pos(),
					"%s while %s is held (locked at line %d)", name, recv, lockLine)
			}
		}
		return true
	})
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if clause.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// mutexOp matches expr as a Lock/Unlock/RLock/RUnlock call on a
// sync.Mutex or sync.RWMutex (directly or promoted through one level
// of embedding) and returns the printed receiver and operation.
func mutexOp(pass *analysis.Pass, expr ast.Expr) (string, string, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", "", false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return exprString(pass.Fset, sel.X), op, true
}

// blockingLockedCall matches calls that block on the outside world:
// WaitGroup.Wait, io.Copy/ReadAll/WriteString, reader/writer method
// calls, and http.Client round-trips.
func blockingLockedCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Package-level io helpers.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "io" {
			switch sel.Sel.Name {
			case "Copy", "CopyN", "CopyBuffer", "ReadAll", "WriteString", "ReadFull":
				return "io." + sel.Sel.Name, true
			}
			return "", false
		}
	}
	recvT := pass.TypesInfo.TypeOf(sel.X)
	if recvT == nil {
		return "", false
	}
	if name, ok := blockingSyncCall(pass, call); ok && name == "sync.WaitGroup.Wait" {
		return name, true
	}
	// http.Client round-trips.
	if named := namedType(recvT); named != nil {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Client" {
			switch sel.Sel.Name {
			case "Do", "Get", "Post", "PostForm", "Head":
				return "http.Client." + sel.Sel.Name, true
			}
		}
	}
	// Read/Write on io-shaped values: request bodies, response writers,
	// connections.
	if sel.Sel.Name == "Read" || sel.Sel.Name == "Write" {
		if ioShaped(recvT) {
			return recvT.String() + "." + sel.Sel.Name, true
		}
	}
	return "", false
}

// namedType unwraps pointers to a named type.
func namedType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// ioShaped reports whether t is one of the I/O types whose Read/Write
// can block on a peer: an interface with Read or Write in its method
// set whose package of origin is io or net/http (io.Reader,
// io.ReadCloser, http.ResponseWriter, ...).
func ioShaped(t types.Type) bool {
	named := namedType(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "io", "net/http", "net", "bufio":
		return true
	}
	return false
}

// exprString renders a (small) expression for diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return "mutex"
	}
	return sb.String()
}

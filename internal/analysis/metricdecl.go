package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// MetricDecl lints every metric registration on an obs.Registry — the
// repo's own zero-alloc metrics kit — so the /metrics surface stays
// greppable and the exposition linter (obs.ParseExposition) never
// trips at scrape time:
//
//   - the name must be a compile-time string constant (a literal or
//     named constant): dynamic names defeat both this lint and the
//     docs catalogue,
//   - it must be snake_case with a consumelocal_ or consumelocald_
//     prefix,
//   - it must carry the type's unit suffix: counters end in _total,
//     histograms in a base unit (_seconds, _bytes), Info in _info,
//     and gauges must not claim a counter's _total (or a histogram
//     series' _count/_sum/_bucket),
//   - the help string must be a non-empty constant,
//   - and the name must appear in docs/OBSERVABILITY.md's catalogue
//     (located via the enclosing module's go.mod; the check is
//     skipped when the catalogue file does not exist, e.g. in
//     analyzer fixtures).
var MetricDecl = &analysis.Analyzer{
	Name: "metricdecl",
	Doc:  "obs metric registrations must use documented, prefixed, unit-suffixed constant names with help text",
	Run:  runMetricDecl,
}

func init() {
	MetricDecl.Flags.String("doc", "docs/OBSERVABILITY.md",
		"module-relative path of the metrics catalogue cross-checked against registrations (empty: disable)")
}

// metricNameRE is the naming grammar: required prefix, then snake_case
// atoms. (CheckName's Prometheus grammar is looser; the repo's own
// names are held to this.)
var metricNameRE = regexp.MustCompile(`^consumelocald?_[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// registryMethods maps obs.Registry registration methods to the index
// of their name argument. Help is always the following argument.
var registryMethods = map[string]bool{
	"Counter":     true,
	"CounterFunc": true,
	"CounterVec":  true,
	"Gauge":       true,
	"GaugeFunc":   true,
	"Histogram":   true,
	"Info":        true,
}

func runMetricDecl(pass *analysis.Pass) (any, error) {
	ignores := parseIgnores(pass)
	doc := newDocCatalogue(pass, pass.Analyzer.Flags.Lookup("doc").Value.String())
	for _, f := range sourceFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := registryCall(pass, call)
			if !ok {
				return true
			}
			checkMetricCall(pass, ignores, doc, method, call)
			return true
		})
	}
	return nil, nil
}

// registryCall reports whether call is a registration method on
// *obs.Registry (matched by type identity: named type Registry in a
// package path ending in internal/obs).
func registryCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] {
		return "", false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil {
		return "", false
	}
	path := obj.Pkg().Path()
	if path != "internal/obs" && !strings.HasSuffix(path, "/internal/obs") {
		return "", false
	}
	return sel.Sel.Name, true
}

func checkMetricCall(pass *analysis.Pass, ignores ignoreIndex, doc *docCatalogue, method string, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	name, nameOK := constString(pass, call.Args[0])
	if !nameOK {
		ignores.report(pass, pass.Analyzer.Name, call.Args[0].Pos(),
			"metric name must be a compile-time string constant")
		return
	}
	if !metricNameRE.MatchString(name) {
		ignores.report(pass, pass.Analyzer.Name, call.Args[0].Pos(),
			"metric name %q must be snake_case with a consumelocal_ or consumelocald_ prefix", name)
	} else {
		checkUnitSuffix(pass, ignores, method, name, call.Args[0])
	}
	if help, ok := constString(pass, call.Args[1]); !ok {
		ignores.report(pass, pass.Analyzer.Name, call.Args[1].Pos(),
			"metric %s help must be a compile-time string constant", name)
	} else if strings.TrimSpace(help) == "" {
		ignores.report(pass, pass.Analyzer.Name, call.Args[1].Pos(),
			"metric %s registered with empty help text", name)
	}
	if doc != nil && !doc.contains(name) {
		ignores.report(pass, pass.Analyzer.Name, call.Args[0].Pos(),
			"metric %s is not documented in %s", name, doc.relPath)
	}
}

// histogramUnits are the base-unit suffixes a histogram name may end
// in; the exposition adds _bucket/_sum/_count per series.
var histogramUnits = []string{"_seconds", "_bytes"}

func checkUnitSuffix(pass *analysis.Pass, ignores ignoreIndex, method, name string, arg ast.Expr) {
	switch method {
	case "Counter", "CounterFunc", "CounterVec":
		if !strings.HasSuffix(name, "_total") {
			ignores.report(pass, pass.Analyzer.Name, arg.Pos(),
				"counter %s must end in _total", name)
		}
	case "Histogram":
		for _, u := range histogramUnits {
			if strings.HasSuffix(name, u) {
				return
			}
		}
		ignores.report(pass, pass.Analyzer.Name, arg.Pos(),
			"histogram %s must end in a base unit (%s)", name, strings.Join(histogramUnits, ", "))
	case "Info":
		if !strings.HasSuffix(name, "_info") {
			ignores.report(pass, pass.Analyzer.Name, arg.Pos(),
				"info metric %s must end in _info", name)
		}
	case "Gauge", "GaugeFunc":
		for _, bad := range []string{"_total", "_count", "_sum", "_bucket", "_info"} {
			if strings.HasSuffix(name, bad) {
				ignores.report(pass, pass.Analyzer.Name, arg.Pos(),
					"gauge %s must not end in %s (reserved for other metric types)", name, bad)
				return
			}
		}
	}
}

// constString evaluates expr as a compile-time string constant.
func constString(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// docCatalogue is the loaded metrics catalogue, or nil when the
// cross-check is disabled or the file is absent.
type docCatalogue struct {
	relPath string
	text    string
}

// newDocCatalogue locates the module root by walking up from the
// pass's first file to the nearest go.mod and loads the catalogue
// beneath it. Missing file or no module root: cross-check disabled.
func newDocCatalogue(pass *analysis.Pass, rel string) *docCatalogue {
	if rel == "" || len(pass.Files) == 0 {
		return nil
	}
	tf := pass.Fset.File(pass.Files[0].Pos())
	if tf == nil {
		return nil
	}
	dir := filepath.Dir(tf.Name())
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			data, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(rel)))
			if err != nil {
				return nil
			}
			return &docCatalogue{relPath: rel, text: string(data)}
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil
		}
		dir = parent
	}
}

// contains reports whether the catalogue mentions the metric name as a
// whole word.
func (d *docCatalogue) contains(name string) bool {
	for text := d.text; ; {
		i := strings.Index(text, name)
		if i < 0 {
			return false
		}
		before := byte('\n')
		if i > 0 {
			before = text[i-1]
		}
		afterIdx := i + len(name)
		after := byte('\n')
		if afterIdx < len(text) {
			after = text[afterIdx]
		}
		if !isNameByte(before) && !isNameByte(after) {
			return true
		}
		text = text[i+len(name):]
	}
}

func isNameByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z')
}

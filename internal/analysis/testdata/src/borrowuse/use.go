// Package borrowuse consumes borrowseam's marked seams: the borrow
// contracts arrive as cross-package facts, and implementations of the
// marked interface method inherit them without re-annotation.
package borrowuse

import "borrowseam"

type keeper struct {
	held []int
	ch   chan []int
}

// Emit implements borrowseam.Sink; iv is borrowed by inheritance.
func (k *keeper) Emit(iv borrowseam.Interval) {
	k.held = iv.Active // want `borrowed value stored outside the call frame`
}

type cache struct{ last borrowseam.Interval }

func (c *cache) Emit(iv borrowseam.Interval) {
	c.last = iv // want `borrowed value stored outside the call frame`
}

type copier struct{ own []int }

// Emit copies the loaned elements into owned storage: the sanctioned
// way to retain the data.
func (c *copier) Emit(iv borrowseam.Interval) {
	c.own = append(c.own[:0], iv.Active...)
}

func use([]int) {}

func sendLoan(k *keeper, p *borrowseam.Producer) {
	k.ch <- p.Scratch() // want `borrowed value sent on a channel`
}

func spawnWithLoan(p *borrowseam.Producer) {
	s := p.Scratch()
	go use(s)   // want `borrowed value passed to a goroutine`
	go func() { // want `goroutine captures borrowed value s`
		_ = s
	}()
}

func frameBoundOK(p *borrowseam.Producer) int {
	s := p.Scratch()
	total := 0
	func() {
		for _, v := range s {
			total += v
		}
	}()
	defer func() { _ = s }()
	return total
}

func escapingClosure(p *borrowseam.Producer) func() int {
	s := p.Scratch()
	return func() int { return len(s) } // want `function literal captures borrowed value s`
}

func rangeCopyOK(p *borrowseam.Producer, sink chan int) {
	for _, v := range p.Scratch() {
		sink <- v
	}
}

func waived(p *borrowseam.Producer) []int {
	//consumelocal:ignore borrowcheck fixture: caller synchronises with the producer reuse cycle
	return p.Scratch()
}

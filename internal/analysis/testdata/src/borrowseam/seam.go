// Package borrowseam declares borrow seams the borrowcheck analyzer
// exports as facts, mirroring the shape of internal/swarm.
package borrowseam

// Interval is one emitted span; Active aliases the producer's scratch.
type Interval struct {
	From, To int64
	Active   []int
}

// Sink consumes intervals.
type Sink interface {
	// Emit receives one interval whose Active slice is on loan.
	//
	//consumelocal:borrowed iv
	Emit(iv Interval)
}

// Producer owns reusable scratch storage.
type Producer struct {
	scratch []int
}

// Scratch lends out the producer's buffer until the next call.
//
//consumelocal:borrowed return
func (p *Producer) Scratch() []int { return p.scratch }

// Forward re-lends the scratch to its own caller: a return-marked
// function may pass a loan through without a waiver.
//
//consumelocal:borrowed return
func Forward(p *Producer) []int {
	return p.Scratch()
}

var leaked []int

func leakToGlobal(p *Producer) {
	leaked = p.Scratch() // want `borrowed value stored in package variable leaked`
}

func leakReturn(p *Producer) []int {
	s := p.Scratch()
	return s // want `borrowed value returned`
}

//consumelocal:borrowed nosuch // want `not a parameter of this signature`
func mislabeled(v int) {}

module fixtures

go 1.24

// Package mainfix exercises the lockscope analyzer: this fixture
// package path suffix-matches lockscope's default scope.
package mainfix

import (
	"io"
	"sync"
)

type reg struct {
	mu   sync.Mutex
	ch   chan int
	wg   sync.WaitGroup
	cond *sync.Cond
}

func (r *reg) sendLocked() {
	r.mu.Lock()
	r.ch <- 1 // want `channel send while r\.mu is held`
	r.mu.Unlock()
}

func (r *reg) sendAfterUnlockOK() {
	r.mu.Lock()
	r.mu.Unlock()
	r.ch <- 1
}

func (r *reg) recvLocked() {
	r.mu.Lock()
	<-r.ch // want `channel receive while r\.mu is held`
	r.mu.Unlock()
}

func (r *reg) rangeLocked() {
	r.mu.Lock()
	for range r.ch { // want `range over channel while r\.mu is held`
	}
	r.mu.Unlock()
}

func (r *reg) writeUnderDeferredUnlock(w io.Writer, buf []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := w.Write(buf) // want `io\.Writer\.Write while r\.mu is held`
	return err
}

func (r *reg) writeWaived(w io.Writer, buf []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	//consumelocal:ignore lockscope fixture: buffer stability requires the lock across the write
	_, _ = w.Write(buf)
}

func (r *reg) waitLocked() {
	r.mu.Lock()
	r.wg.Wait() // want `sync\.WaitGroup\.Wait while r\.mu is held`
	r.mu.Unlock()
}

func (r *reg) condWaitOK() {
	r.mu.Lock()
	r.cond.Wait()
	r.mu.Unlock()
}

func (r *reg) selectBlockingLocked() {
	r.mu.Lock()
	select { // want `blocking select while r\.mu is held`
	case <-r.ch:
	case r.ch <- 1:
	}
	r.mu.Unlock()
}

func (r *reg) selectDefaultOK() {
	r.mu.Lock()
	select {
	case r.ch <- 1:
	default:
	}
	r.mu.Unlock()
}

func (r *reg) closeLockedOK() {
	r.mu.Lock()
	close(r.ch)
	r.mu.Unlock()
}

func (r *reg) branchUnlockOK(cond bool) {
	r.mu.Lock()
	if cond {
		r.mu.Unlock()
		r.ch <- 1
		return
	}
	r.mu.Unlock()
}

func (r *reg) litRunsElsewhereOK() func() {
	r.mu.Lock()
	defer r.mu.Unlock()
	return func() {
		r.ch <- 1
	}
}

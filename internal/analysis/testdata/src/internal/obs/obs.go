// Package obs is a stub of the repo's metrics registry, just enough
// surface for the metricdecl fixtures: the analyzer matches the
// Registry type by name and package-path suffix.
package obs

type Registry struct{}

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

func (r *Registry) Counter(name, help string) *Counter { return nil }

func (r *Registry) Gauge(name, help string) *Gauge { return nil }

func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram { return nil }

func (r *Registry) Info(name, help, rendered string) {}

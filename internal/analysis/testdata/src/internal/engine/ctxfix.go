// Package enginefix exercises the ctxsend analyzer: this fixture
// package path suffix-matches ctxsend's default scope.
package enginefix

import (
	"context"
	"sync"
)

func sendUnguarded(ctx context.Context, ch chan int) {
	ch <- 1 // want `channel send in a context-carrying function outside a ctx-guarded select`
}

func sendGuarded(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

func recvUnguarded(ctx context.Context, ch chan int) int {
	return <-ch // want `channel receive in a context-carrying function outside a ctx-guarded select`
}

func recvWaived(ctx context.Context, ch chan int) int {
	//consumelocal:ignore ctxsend fixture: buffered reply channel can never block
	return <-ch
}

func recvDoneOK(ctx context.Context) {
	<-ctx.Done()
}

func rangeChan(ctx context.Context, ch chan int) {
	for range ch { // want `range over a channel in a context-carrying function cannot observe ctx cancellation`
	}
}

func selectNoGuard(ctx context.Context, a, b chan int) {
	select { // want `select in a context-carrying function has neither a ctx\.Done\(\) case nor a default case`
	case <-a:
	case <-b:
	}
}

func selectDefaultOK(ctx context.Context, a chan int) {
	select {
	case <-a:
	default:
	}
}

func guardedClauseBody(ctx context.Context, a, b chan int) {
	select {
	case v := <-a:
		b <- v // want `channel send in a context-carrying function outside a ctx-guarded select`
	case <-ctx.Done():
	}
}

func wgWait(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() // want `sync\.WaitGroup\.Wait blocks without observing ctx cancellation`
}

func noCtxOK(ch chan int) {
	ch <- 1
}

func litCapturesCtx(ctx context.Context, ch chan int) func() {
	return func() {
		_ = ctx.Err()
		ch <- 1 // want `channel send in a context-carrying function outside a ctx-guarded select`
	}
}

func litWithoutCtxOK(ch chan int) func() {
	return func() {
		ch <- 1
	}
}

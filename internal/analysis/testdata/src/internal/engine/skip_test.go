package enginefix

import "context"

// Test files are exempt from every consumelocal-vet analyzer: this
// violation must produce no diagnostic.
func testOnlySend(ctx context.Context, ch chan int) {
	ch <- 1
}

// Package hotfix exercises the hotalloc analyzer.
package hotfix

import "fmt"

type thing struct{ buf []int }

func (t *thing) reset() {}

func consume(any) {}

//consumelocal:hotpath
func hotFmt(err error) {
	fmt.Println(err) // want `hot path uses package fmt \(allocates per call\)`
}

//consumelocal:hotpath
func hotFmtWaived(err error) error {
	//consumelocal:ignore hotalloc fixture: cold error exit formats once
	return fmt.Errorf("wrap: %w", err)
}

//consumelocal:hotpath
func hotLits() {
	m := map[int]int{} // want `map literal allocates on the hot path`
	_ = m
	s := []int{1, 2} // want `slice literal allocates on the hot path`
	_ = s
}

//consumelocal:hotpath
func hotClosure() func() int {
	f := func() int { return 1 } // want `function literal allocates a closure on the hot path`
	return f
}

//consumelocal:hotpath
func hotMake() {
	_ = make(map[int]int) // want `make\(map\) allocates on the hot path`
	_ = make(chan int)    // want `make\(chan\) allocates on the hot path`
	buf := make([]int, 0, 8)
	_ = buf
}

//consumelocal:hotpath
func hotBoxReturn(v int) any {
	return v // want `non-pointer value boxed into interface`
}

//consumelocal:hotpath
func hotBoxArg(v int) {
	consume(v) // want `non-pointer value boxed into interface`
	consume(42)
	consume(nil)
}

//consumelocal:hotpath
func hotNoBoxPointer(t *thing) any {
	return t
}

//consumelocal:hotpath
func hotMethodValue(t *thing) func() {
	f := t.reset // want `method value allocates a bound closure on the hot path`
	return f
}

//consumelocal:hotpath
func hotDirectCallOK(t *thing) {
	t.reset()
}

//consumelocal:hotpath
func hotEscapingAppend(t *thing, n int) {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `append grows uncapped local out, which escapes the function`
	}
	t.buf = out
}

//consumelocal:hotpath
func hotCappedAppendOK(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

func coldEverythingOK() any {
	m := map[int]int{}
	_ = fmt.Sprint(m)
	var v int
	return v
}

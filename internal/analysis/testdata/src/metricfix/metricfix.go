// Package metricfix exercises the metricdecl analyzer against the
// fixture catalogue in testdata/src/docs/OBSERVABILITY.md.
package metricfix

import "internal/obs"

const helpOK = "Documented fixture metric."

func register(r *obs.Registry, dyn string) {
	r.Counter("consumelocal_fixture_events_total", helpOK)
	r.Counter("consumelocal_fixture_undocumented_total", helpOK) // want `not documented`
	r.Counter(dyn, helpOK)                                       // want `must be a compile-time string constant`
	r.Counter("consumelocal_fixture_events", helpOK)             // want `must end in _total`
	r.Counter("loadgen_fixture_total", helpOK)                   // want `must be snake_case with a consumelocal_ or consumelocald_ prefix`
	r.Histogram("consumelocald_fixture_latency_seconds", helpOK, nil)
	r.Histogram("consumelocal_fixture_latency", helpOK, nil) // want `must end in a base unit`
	r.Gauge("consumelocal_fixture_depth", helpOK)
	r.Gauge("consumelocal_fixture_depth_total", helpOK) // want `must not end in _total`
	r.Gauge("consumelocal_fixture_depth", "")           // want `empty help text`
	r.Info("consumelocal_fixture_build_info", helpOK, "go1.24")
	r.Info("consumelocal_fixture_build", helpOK, "go1.24") // want `must end in _info`
	//consumelocal:ignore metricdecl fixture: externally mandated legacy name
	r.Counter("legacy_external_total", helpOK)
}

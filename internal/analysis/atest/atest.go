// Package atest is a minimal offline analogue of
// golang.org/x/tools/go/analysis/analysistest: it loads fixture
// packages from a testdata/src tree, runs one analyzer over them in
// order (threading object facts across packages in memory), and checks
// the reported diagnostics against analysistest-style "// want"
// comments.
//
// It exists because the full analysistest depends on go/packages,
// which is not part of the toolchain's vendored x/tools subset this
// repo builds against. The subset it implements is exactly what the
// consumelocal-vet analyzers need: multi-package runs, cross-package
// object facts, and regexp want-matching. Standard-library imports in
// fixtures are resolved with the source importer, fixture-local
// imports from the testdata tree itself.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each package path (relative to srcdir) in order, applies
// the analyzer to every one, and asserts the diagnostics match the
// fixtures' // want comments. Packages listed earlier are analyzed
// earlier, so their exported facts are visible to later ones — list
// dependencies first, as a real build graph would order them.
func Run(t *testing.T, srcdir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	r := &runner{
		t:        t,
		srcdir:   srcdir,
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*loadedPkg),
		objFacts: make(map[types.Object]analysis.Fact),
		pkgFacts: make(map[*types.Package]analysis.Fact),
	}
	r.std = importer.ForCompiler(r.fset, "source", nil)

	var diags []diagnostic
	for _, path := range pkgPaths {
		lp, err := r.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       r.fset,
			Files:      lp.files,
			Pkg:        lp.pkg,
			TypesInfo:  lp.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				p := r.fset.Position(d.Pos)
				diags = append(diags, diagnostic{file: p.Filename, line: p.Line, msg: d.Message})
			},
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				return copyFact(r.objFacts[obj], fact)
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				r.objFacts[obj] = fact
			},
			ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
				return copyFact(r.pkgFacts[pkg], fact)
			},
			ExportPackageFact: func(fact analysis.Fact) {
				r.pkgFacts[lp.pkg] = fact
			},
			AllObjectFacts: func() []analysis.ObjectFact {
				out := make([]analysis.ObjectFact, 0, len(r.objFacts))
				for o, f := range r.objFacts {
					out = append(out, analysis.ObjectFact{Object: o, Fact: f})
				}
				return out
			},
			AllPackageFacts: func() []analysis.PackageFact {
				out := make([]analysis.PackageFact, 0, len(r.pkgFacts))
				for p, f := range r.pkgFacts {
					out = append(out, analysis.PackageFact{Package: p, Fact: f})
				}
				return out
			},
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, path, err)
		}
	}

	wants := r.collectWants(pkgPaths)
	matchDiagnostics(t, diags, wants)
}

type diagnostic struct {
	file string
	line int
	msg  string
}

// want is one expectation parsed from a // want comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type runner struct {
	t        *testing.T
	srcdir   string
	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*loadedPkg
	objFacts map[types.Object]analysis.Fact
	pkgFacts map[*types.Package]analysis.Fact
}

// Import resolves fixture-local packages from the testdata tree first,
// falling back to the standard library's source importer — making the
// runner itself the types.Importer for fixture typechecking.
func (r *runner) Import(path string) (*types.Package, error) {
	if lp, err := r.load(path); err == nil {
		return lp.pkg, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return r.std.Import(path)
}

// load parses and typechecks one fixture package (cached).
func (r *runner) load(path string) (*loadedPkg, error) {
	if lp, ok := r.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(r.srcdir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(r.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: r}
	pkg, err := conf.Check(path, r.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	r.pkgs[path] = lp
	return lp, nil
}

// collectWants parses // want comments from every fixture file of the
// analyzed packages. A want comment holds one or more Go-quoted
// regexps: // want `re` "re2" — each expecting one diagnostic on its
// line.
func (r *runner) collectWants(pkgPaths []string) []*want {
	var wants []*want
	for _, path := range pkgPaths {
		lp := r.pkgs[path]
		for _, f := range lp.files {
			name := r.fset.File(f.Pos()).Name()
			data, err := os.ReadFile(name)
			if err != nil {
				r.t.Fatalf("reading fixture %s: %v", name, err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				idx := strings.Index(line, "// want ")
				if idx < 0 {
					continue
				}
				for _, pat := range parseWantPatterns(r.t, name, i+1, line[idx+len("// want "):]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						r.t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, pat, err)
					}
					wants = append(wants, &want{file: name, line: i + 1, re: re})
				}
			}
		}
	}
	return wants
}

// parseWantPatterns extracts the quoted regexps from a want comment
// tail: backquoted or double-quoted Go string literals.
func parseWantPatterns(t *testing.T, file string, line int, tail string) []string {
	var pats []string
	s := strings.TrimSpace(tail)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern", file, line)
			}
			pats = append(pats, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			rest := s[1:]
			q := 1
			for i := 0; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					q += i + 1
					break
				}
			}
			unq, err := strconv.Unquote(s[:q+1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", file, line, s, err)
			}
			pats = append(pats, unq)
			s = strings.TrimSpace(s[q+1:])
		default:
			t.Fatalf("%s:%d: want patterns must be quoted, got %q", file, line, s)
		}
	}
	return pats
}

// matchDiagnostics pairs every diagnostic with a want on its line and
// reports both unexpected diagnostics and unmatched wants.
func matchDiagnostics(t *testing.T, diags []diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.file && w.line == d.line && w.re.MatchString(d.msg) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.file, d.line, d.msg)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// copyFact copies a stored fact into the caller-supplied pointer,
// mirroring the gob round-trip real drivers perform.
func copyFact(stored, dst analysis.Fact) bool {
	if stored == nil {
		return false
	}
	sv := reflect.ValueOf(stored)
	dv := reflect.ValueOf(dst)
	if sv.Type() != dv.Type() || dv.Kind() != reflect.Pointer {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

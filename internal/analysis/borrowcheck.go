package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// BorrowCheck enforces the repo's buffer-ownership contract. The hot
// path stays allocation-free by lending internal scratch storage
// across call boundaries — the tracker's Interval.Active slice handed
// to Sink.Emit, the sweeper's interval buffers, pooled worker
// messages, the obs scrape buffer. Such a loan is valid only until the
// callee returns (or, for a returned buffer, until the next call on
// the producer); keeping a reference is a use-after-reuse bug the race
// detector cannot see.
//
// Seams are declared with a //consumelocal:borrowed marker in the doc
// comment of a function, method, or interface method:
//
//	//consumelocal:borrowed iv        → the iv parameter is on loan
//	//consumelocal:borrowed return    → the returned value is on loan
//
// The analyzer exports these as object facts, propagates them to
// every implementation of a marked interface method (engine-side
// sinks inherit swarm.Sink.Emit's contract without re-annotating),
// seeds call results of return-marked producers as borrowed, tracks
// aliases through local assignments and ranges, and reports when a
// borrowed value is:
//
//   - stored outside the frame (field, map/slice element, global),
//   - returned (unless the enclosing function is itself marked
//     "borrowed return", which forwards the loan to its caller),
//   - sent on a channel,
//   - handed to a goroutine, or captured by a function literal that
//     is not immediately invoked or deferred.
//
// Copying out (copy, append into an owned buffer, element reads) is
// free; that is the sanctioned way to keep data past the loan.
var BorrowCheck = &analysis.Analyzer{
	Name:      "borrowcheck",
	Doc:       "values from //consumelocal:borrowed seams must not be stored, returned, or captured beyond the call",
	Run:       runBorrowCheck,
	FactTypes: []analysis.Fact{(*borrowFact)(nil)},
}

// borrowFact marks a function object's loaned values: parameter names
// of the function's own signature, and/or the keyword "return".
type borrowFact struct {
	Params []string
}

func (*borrowFact) AFact() {}

func (f *borrowFact) String() string {
	return "borrowed(" + strings.Join(f.Params, ",") + ")"
}

func (f *borrowFact) has(name string) bool {
	for _, p := range f.Params {
		if p == name {
			return true
		}
	}
	return false
}

// markedIface is one interface method carrying a borrow contract that
// implementations in the current package must inherit.
type markedIface struct {
	iface  *types.Interface
	method *types.Func
	fact   *borrowFact
}

func runBorrowCheck(pass *analysis.Pass) (any, error) {
	ignores := parseIgnores(pass)

	// Phase 1: collect and export facts for this package's own markers.
	local := collectBorrowMarkers(pass)
	for fn, fact := range local {
		pass.ExportObjectFact(fn, fact)
	}

	// Phase 2: gather marked interface methods, local and imported, so
	// implementations inherit the contract.
	ifaces := markedIfaceMethods(pass, local)

	// Phase 3: check every function body.
	for _, f := range sourceFiles(pass) {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			fact := inheritedFact(pass, fn, obj, local[obj], ifaces)
			checkBorrowBody(pass, ignores, fn, fact)
		}
	}
	return nil, nil
}

// collectBorrowMarkers parses //consumelocal:borrowed markers on
// function declarations and interface method fields, validating the
// argument list against the signature.
func collectBorrowMarkers(pass *analysis.Pass) map[*types.Func]*borrowFact {
	out := make(map[*types.Func]*borrowFact)
	for _, f := range sourceFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				tail, ok := docMarker(n.Doc, markerBorrowed)
				if !ok {
					return true
				}
				if obj, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
					if fact := parseBorrowTail(pass, n.Doc.Pos(), tail, obj.Signature()); fact != nil {
						out[obj] = fact
					}
				}
			case *ast.InterfaceType:
				for _, field := range n.Methods.List {
					tail, ok := docMarker(field.Doc, markerBorrowed)
					if !ok || len(field.Names) == 0 {
						continue
					}
					if obj, ok := pass.TypesInfo.Defs[field.Names[0]].(*types.Func); ok {
						if fact := parseBorrowTail(pass, field.Pos(), tail, obj.Signature()); fact != nil {
							out[obj] = fact
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// parseBorrowTail validates the marker's space-separated arguments:
// each must be "return" or the name of a parameter of sig.
func parseBorrowTail(pass *analysis.Pass, pos token.Pos, tail string, sig *types.Signature) *borrowFact {
	if tail == "" {
		pass.Reportf(pos, "malformed consumelocal:borrowed marker: name the loaned parameters and/or \"return\"")
		return nil
	}
	fact := &borrowFact{}
	for _, tok := range strings.Fields(tail) {
		if tok == "return" {
			fact.Params = append(fact.Params, tok)
			continue
		}
		found := false
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i).Name() == tok {
				found = true
				break
			}
		}
		if !found {
			pass.Reportf(pos, "consumelocal:borrowed names %q, which is not a parameter of this signature", tok)
			return nil
		}
		fact.Params = append(fact.Params, tok)
	}
	sort.Strings(fact.Params)
	return fact
}

// markedIfaceMethods collects every interface method carrying a borrow
// fact — from this package's markers and from all imports.
func markedIfaceMethods(pass *analysis.Pass, local map[*types.Func]*borrowFact) []markedIface {
	var out []markedIface
	add := func(tn *types.TypeName) {
		iface, ok := tn.Type().Underlying().(*types.Interface)
		if !ok {
			return
		}
		for i := 0; i < iface.NumExplicitMethods(); i++ {
			m := iface.ExplicitMethod(i)
			if fact, ok := local[m]; ok {
				out = append(out, markedIface{iface, m, fact})
				continue
			}
			fact := new(borrowFact)
			if pass.ImportObjectFact(m, fact) {
				out = append(out, markedIface{iface, m, fact})
			}
		}
	}
	scan := func(scope *types.Scope) {
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				add(tn)
			}
		}
	}
	scan(pass.Pkg.Scope())
	for _, imp := range pass.Pkg.Imports() {
		scan(imp.Scope())
	}
	return out
}

// inheritedFact combines a method's own fact with contracts inherited
// from marked interface methods it implements, translating parameter
// names across signatures by position. The merged fact is exported so
// direct callers of the implementation see the contract too.
func inheritedFact(pass *analysis.Pass, fn *ast.FuncDecl, obj *types.Func, own *borrowFact, ifaces []markedIface) *borrowFact {
	sig := obj.Signature()
	if sig.Recv() == nil || len(ifaces) == 0 {
		return own
	}
	recvT := sig.Recv().Type()
	merged := own
	for _, mi := range ifaces {
		if mi.method.Name() != obj.Name() || mi.method == obj {
			continue
		}
		if !types.Implements(recvT, mi.iface) && !types.Implements(types.NewPointer(recvT), mi.iface) {
			continue
		}
		isig := mi.method.Signature()
		for _, p := range mi.fact.Params {
			name := p
			if p != "return" {
				idx := -1
				for i := 0; i < isig.Params().Len(); i++ {
					if isig.Params().At(i).Name() == p {
						idx = i
						break
					}
				}
				if idx < 0 || idx >= sig.Params().Len() {
					continue
				}
				name = sig.Params().At(idx).Name()
				if name == "" || name == "_" {
					continue // unreferencable: nothing can leak
				}
			}
			if merged == nil {
				merged = &borrowFact{}
			} else if merged == own {
				merged = &borrowFact{Params: append([]string(nil), own.Params...)}
			}
			if !merged.has(name) {
				merged.Params = append(merged.Params, name)
			}
		}
	}
	if merged != nil && merged != own {
		sort.Strings(merged.Params)
		pass.ExportObjectFact(obj, merged)
	}
	return merged
}

// checkBorrowBody runs the intra-procedural borrow analysis over one
// function body.
func checkBorrowBody(pass *analysis.Pass, ignores ignoreIndex, fn *ast.FuncDecl, fact *borrowFact) {
	info := pass.TypesInfo
	borrowed := make(map[*types.Var]bool)
	returnOK := fact != nil && fact.has("return")

	if fact != nil && fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				if fact.has(name.Name) {
					if v, ok := info.Defs[name].(*types.Var); ok {
						borrowed[v] = true
					}
				}
			}
		}
	}

	// Alias propagation to a fixpoint: x := borrowed, range over a
	// borrowed slice, results of return-marked producer calls.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					v, ok := localVarOf(info, id)
					if !ok || borrowed[v] {
						continue
					}
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 && i == 0 {
						rhs = n.Rhs[0] // v, ok := producer() — first value carries the loan
					}
					if rhs != nil && exprBorrowed(pass, rhs, borrowed) {
						borrowed[v] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil || !exprBorrowed(pass, n.X, borrowed) {
					return true
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					if v, ok := localVarOf(info, id); ok && !borrowed[v] {
						borrowed[v] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	// No early-out on an empty alias set: a return-marked producer's
	// result can leak directly (leaked = p.Scratch()) without ever
	// being bound to a local, and exprBorrowed spots that on its own.

	// Function literals whose immediate invocation or deferral keeps
	// them inside the frame; their capture of borrowed values is fine.
	framebound := make(map[*ast.FuncLit]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return true // go f() is NOT frame-bound; its lit stays flagged
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				framebound[lit] = true
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				framebound[lit] = true
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if !exprBorrowed(pass, n.Rhs[i], borrowed) {
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok {
					if _, isLocal := localVarOf(info, id); isLocal || id.Name == "_" {
						continue // local alias: tracked, not a leak
					}
					ignores.report(pass, pass.Analyzer.Name, n.Rhs[i].Pos(),
						"borrowed value stored in package variable %s; it is only valid for this call", id.Name)
					continue
				}
				ignores.report(pass, pass.Analyzer.Name, n.Rhs[i].Pos(),
					"borrowed value stored outside the call frame; copy it out instead")
			}
		case *ast.ReturnStmt:
			if returnOK {
				return true // this function forwards the loan by contract
			}
			for _, res := range n.Results {
				if exprBorrowed(pass, res, borrowed) {
					ignores.report(pass, pass.Analyzer.Name, res.Pos(),
						"borrowed value returned; it is invalid once this call ends (mark the function \"borrowed return\" to forward the loan)")
				}
			}
		case *ast.SendStmt:
			if exprBorrowed(pass, n.Value, borrowed) {
				ignores.report(pass, pass.Analyzer.Name, n.Value.Pos(),
					"borrowed value sent on a channel outlives the call; copy it out instead")
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if exprBorrowed(pass, arg, borrowed) {
					ignores.report(pass, pass.Analyzer.Name, arg.Pos(),
						"borrowed value passed to a goroutine outlives the call; copy it out instead")
				}
			}
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				if v, ok := capturesBorrowed(pass, lit, borrowed); ok {
					ignores.report(pass, pass.Analyzer.Name, lit.Pos(),
						"goroutine captures borrowed value %s, which outlives the call", v.Name())
				}
			}
		case *ast.FuncLit:
			if framebound[n] {
				return true // body still inspected by this walk
			}
			if v, ok := capturesBorrowed(pass, n, borrowed); ok {
				ignores.report(pass, pass.Analyzer.Name, n.Pos(),
					"function literal captures borrowed value %s but is not invoked in this frame", v.Name())
			}
		}
		return true
	})
}

// localVarOf resolves id to a function-local *types.Var (param or
// local; not a package-level variable or field).
func localVarOf(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	var v *types.Var
	if def, ok := info.Defs[id].(*types.Var); ok {
		v = def
	} else if use, ok := info.Uses[id].(*types.Var); ok {
		v = use
	}
	if v == nil || v.IsField() {
		return nil, false
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return nil, false // package scope
	}
	return v, true
}

// exprBorrowed reports whether e's value is rooted in a borrowed
// variable or produced by a return-marked callee: selectors, indexing,
// slicing, dereference and address-of all preserve borrowedness, as
// does wrapping in a composite literal. A value whose type cannot hold
// a reference (ints, value structs of them) is a copy, never a loan.
func exprBorrowed(pass *analysis.Pass, e ast.Expr, borrowed map[*types.Var]bool) bool {
	if t := pass.TypesInfo.TypeOf(e); t != nil && !typeRetains(t) {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			return borrowed[v]
		}
	case *ast.SelectorExpr:
		return exprBorrowed(pass, e.X, borrowed)
	case *ast.IndexExpr:
		return exprBorrowed(pass, e.X, borrowed)
	case *ast.SliceExpr:
		return exprBorrowed(pass, e.X, borrowed)
	case *ast.StarExpr:
		return exprBorrowed(pass, e.X, borrowed)
	case *ast.ParenExpr:
		return exprBorrowed(pass, e.X, borrowed)
	case *ast.UnaryExpr:
		return exprBorrowed(pass, e.X, borrowed)
	case *ast.TypeAssertExpr:
		return exprBorrowed(pass, e.X, borrowed)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if exprBorrowed(pass, el, borrowed) {
				return true
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == types.Universe.Lookup("append") {
				// append(borrowed, ...) returns the loaned backing array;
				// append(owned, borrowed...) copies elements out of it,
				// which is the sanctioned way to retain the data.
				if len(e.Args) > 0 {
					return exprBorrowed(pass, e.Args[0], borrowed)
				}
				return false
			}
		}
		if fact := calleeBorrowFact(pass, e); fact != nil && fact.has("return") {
			return true
		}
	}
	return false
}

// calleeBorrowFact resolves the called function object (plain,
// method, or interface method) and returns its borrow fact, if any.
func calleeBorrowFact(pass *analysis.Pass, call *ast.CallExpr) *borrowFact {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	fact := new(borrowFact)
	if pass.ImportObjectFact(fn, fact) {
		return fact
	}
	return nil
}

// typeRetains reports whether a value of type t can hold a reference
// into loaned storage. Plain value types (numbers, bools, strings —
// immutable backing — and structs/arrays of them) are copies; anything
// pointer-shaped can alias the loan.
func typeRetains(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeRetains(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return typeRetains(u.Elem())
	}
	return true
}

// capturesBorrowed reports whether lit's body references a borrowed
// variable from the enclosing frame.
func capturesBorrowed(pass *analysis.Pass, lit *ast.FuncLit, borrowed map[*types.Var]bool) (*types.Var, bool) {
	var found *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && borrowed[v] {
				found = v
			}
		}
		return true
	})
	return found, found != nil
}

package analysis

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Marker comment prefixes. Markers are line comments anywhere in a
// declaration's doc comment (borrowed, hotpath) or on/above the
// offending line (ignore). See docs/LINT.md for the grammar.
const (
	markerBorrowed = "//consumelocal:borrowed"
	markerHotpath  = "//consumelocal:hotpath"
	markerIgnore   = "//consumelocal:ignore"
)

// markerText returns the remainder of a marker line comment after
// prefix, and whether the comment is that marker. A marker must be
// exactly the prefix or the prefix followed by a space-separated tail:
// "//consumelocal:borrowedx" is not a marker.
func markerText(c *ast.Comment, prefix string) (string, bool) {
	t := c.Text
	if !strings.HasPrefix(t, prefix) {
		return "", false
	}
	rest := t[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// docMarker scans a doc comment group for the given marker and returns
// its argument tail.
func docMarker(doc *ast.CommentGroup, prefix string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if tail, ok := markerText(c, prefix); ok {
			return tail, ok
		}
	}
	return "", false
}

// ignoreEntry is one parsed //consumelocal:ignore marker.
type ignoreEntry struct {
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// ignoreIndex maps file → line → waivers declared for that line. A
// waiver on line N suppresses findings reported on line N and line N+1,
// so it can sit at the end of the offending line or on its own line
// directly above it.
type ignoreIndex map[string]map[int][]*ignoreEntry

// parseIgnores indexes every ignore marker in the pass's files. A
// malformed marker (missing analyzer or reason) is reported immediately
// — an unjustified waiver is itself a finding.
func parseIgnores(pass *analysis.Pass) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil || isTestFile(tf.Name()) {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				tail, ok := markerText(c, markerIgnore)
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(tail, " ")
				reason = strings.TrimSpace(reason)
				if name == "" || reason == "" {
					pass.Reportf(c.Pos(), "malformed %s marker: want %q", markerIgnore[2:], "//consumelocal:ignore <analyzer> <reason>")
					continue
				}
				byLine := idx[tf.Name()]
				if byLine == nil {
					byLine = make(map[int][]*ignoreEntry)
					idx[tf.Name()] = byLine
				}
				line := tf.Line(c.Pos())
				byLine[line] = append(byLine[line], &ignoreEntry{analyzer: name, reason: reason, pos: c.Pos()})
			}
		}
	}
	return idx
}

// report emits a diagnostic for analyzer name at pos unless an ignore
// marker for that analyzer sits on the same line or the line above.
func (idx ignoreIndex) report(pass *analysis.Pass, name string, pos token.Pos, format string, args ...any) {
	tf := pass.Fset.File(pos)
	if tf != nil {
		line := tf.Line(pos)
		for _, l := range [2]int{line, line - 1} {
			for _, e := range idx[tf.Name()][l] {
				if e.analyzer == name {
					e.used = true
					return
				}
			}
		}
	}
	pass.Reportf(pos, format, args...)
}

// isTestFile reports whether a file name is a Go test file.
func isTestFile(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}

// sourceFiles yields the pass's non-test files.
func sourceFiles(pass *analysis.Pass) []*ast.File {
	out := make([]*ast.File, 0, len(pass.Files))
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil || isTestFile(tf.Name()) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// pkgInScope reports whether the package path matches any of the
// comma-separated path suffixes in scope. An empty scope matches every
// package — fixtures use that to opt in directly.
func pkgInScope(path, scope string) bool {
	if scope == "" {
		return true
	}
	for _, suf := range strings.Split(scope, ",") {
		suf = strings.TrimSpace(suf)
		if suf == "" {
			continue
		}
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// HotAlloc lints functions marked //consumelocal:hotpath — the
// per-session and per-interval core the alloc-pin tests guard
// (Tracker.Advance, Scanner.Scan, the MatchInto policies,
// worker.settle, the obs counter ops) — for constructs that allocate
// or box on every call:
//
//   - any use of package fmt (formatting allocates; error paths that
//     keep fmt.Errorf carry an explicit waiver),
//   - map and slice composite literals, make(map) and make(chan)
//     (make([]T, n[, c]) is allowed: sized scratch growth is the
//     repo's amortised-reuse idiom, pinned by the alloc tests),
//   - function literals and method values (closure allocation),
//   - conversions of non-pointer values to interface types (boxing;
//     constants and pointer-shaped values — pointers, channels, maps,
//     funcs — are free and allowed),
//   - append growth of an uncapped local that escapes the function.
//
// The lint is syntactic and intra-procedural: it proves the marked
// function itself is clean, while the allocation regression tests
// prove the composition stays at zero allocs/op.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "functions marked //consumelocal:hotpath must not allocate: no fmt, map/slice literals, closures, or interface boxing",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) (any, error) {
	ignores := parseIgnores(pass)
	for _, f := range sourceFiles(pass) {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := docMarker(fn.Doc, markerHotpath); !ok {
				continue
			}
			checkHotBody(pass, ignores, fn)
		}
	}
	return nil, nil
}

func checkHotBody(pass *analysis.Pass, ignores ignoreIndex, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	escaping := escapingAppendLocals(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if pkg, ok := info.Uses[n].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
				ignores.report(pass, pass.Analyzer.Name, n.Pos(), "hot path uses package fmt (allocates per call)")
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				ignores.report(pass, pass.Analyzer.Name, n.Pos(), "map literal allocates on the hot path")
			case *types.Slice:
				ignores.report(pass, pass.Analyzer.Name, n.Pos(), "slice literal allocates on the hot path")
			}
		case *ast.FuncLit:
			ignores.report(pass, pass.Analyzer.Name, n.Pos(), "function literal allocates a closure on the hot path")
			return false
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				if !isCallFun(pass, fn.Body, n) {
					ignores.report(pass, pass.Analyzer.Name, n.Pos(), "method value allocates a bound closure on the hot path")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, ignores, n, escaping)
		case *ast.AssignStmt:
			checkHotAssign(pass, ignores, n)
		case *ast.ReturnStmt:
			checkHotReturn(pass, ignores, fn, n)
		}
		return true
	})
}

// isCallFun reports whether sel appears as the function operand of a
// call somewhere in body (x.M() — direct call, no bound-method
// allocation) rather than as a value (f := x.M).
func isCallFun(pass *analysis.Pass, body *ast.BlockStmt, sel *ast.SelectorExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
			found = true
		}
		return !found
	})
	return found
}

// checkHotCall flags allocating builtins and interface boxing at call
// boundaries.
func checkHotCall(pass *analysis.Pass, ignores ignoreIndex, call *ast.CallExpr, escaping map[*types.Var]bool) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch info.Uses[id] {
		case types.Universe.Lookup("make"):
			if len(call.Args) > 0 {
				if t := info.TypeOf(call.Args[0]); t != nil {
					switch t.Underlying().(type) {
					case *types.Map:
						ignores.report(pass, pass.Analyzer.Name, call.Pos(), "make(map) allocates on the hot path")
					case *types.Chan:
						ignores.report(pass, pass.Analyzer.Name, call.Pos(), "make(chan) allocates on the hot path")
					}
				}
			}
			return
		case types.Universe.Lookup("append"):
			if len(call.Args) > 0 {
				if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok && escaping[v] {
						ignores.report(pass, pass.Analyzer.Name, call.Pos(),
							"append grows uncapped local %s, which escapes the function", id.Name)
					}
				}
			}
			return
		}
	}
	// Interface boxing of call arguments.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			pt = sig.Params().At(i).Type()
		case sig.Variadic():
			if call.Ellipsis != token.NoPos {
				continue // x... passes the slice through, no per-element boxing
			}
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if boxesOnConversion(info, arg, pt) {
			ignores.report(pass, pass.Analyzer.Name, arg.Pos(),
				"non-pointer value boxed into interface %s on the hot path", pt.String())
		}
	}
}

// callSignature resolves the signature of a (non-builtin) call.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// checkHotAssign flags interface boxing in assignments.
func checkHotAssign(pass *analysis.Pass, ignores ignoreIndex, as *ast.AssignStmt) {
	info := pass.TypesInfo
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		lt := info.TypeOf(as.Lhs[i])
		if lt == nil {
			continue
		}
		if boxesOnConversion(info, rhs, lt) {
			ignores.report(pass, pass.Analyzer.Name, rhs.Pos(),
				"non-pointer value boxed into interface %s on the hot path", lt.String())
		}
	}
}

// checkHotReturn flags interface boxing in return statements.
func checkHotReturn(pass *analysis.Pass, ignores ignoreIndex, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	info := pass.TypesInfo
	sig, ok := info.TypeOf(fn.Name).(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		if boxesOnConversion(info, res, sig.Results().At(i).Type()) {
			ignores.report(pass, pass.Analyzer.Name, res.Pos(),
				"non-pointer value boxed into interface %s on the hot path", sig.Results().At(i).Type().String())
		}
	}
}

// boxesOnConversion reports whether assigning expr to target allocates
// an interface box: target is an interface, expr's type is concrete,
// and the value is neither a constant nor pointer-shaped.
func boxesOnConversion(info *types.Info, expr ast.Expr, target types.Type) bool {
	if target == nil {
		return false
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Value != nil || tv.IsNil() {
		return false // constants and nil never allocate
	}
	src := tv.Type
	if src == nil {
		return false
	}
	switch src.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // already boxed or pointer-shaped
	}
	return true
}

// escapingAppendLocals finds local slice variables declared without an
// explicit capacity that later leave the function: returned, or stored
// through a selector/index/dereference. append growth of such a local
// is the classic accidental per-call allocation.
func escapingAppendLocals(pass *analysis.Pass, fn *ast.FuncDecl) map[*types.Var]bool {
	info := pass.TypesInfo
	uncapped := make(map[*types.Var]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				v, ok := info.Defs[id].(*types.Var)
				if !ok {
					continue
				}
				if _, ok := v.Type().Underlying().(*types.Slice); !ok {
					continue
				}
				if !hasExplicitCap(info, n.Rhs[i]) {
					uncapped[v] = true
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				if v, ok := info.Defs[id].(*types.Var); ok {
					if _, ok := v.Type().Underlying().(*types.Slice); ok && len(n.Values) == 0 {
						uncapped[v] = true
					}
				}
			}
		}
		return true
	})
	if len(uncapped) == 0 {
		return nil
	}
	escaping := make(map[*types.Var]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				markEscapes(info, res, uncapped, escaping)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if _, ok := lhs.(*ast.Ident); ok {
					continue // local-to-local moves stay local
				}
				if i < len(n.Rhs) {
					markEscapes(info, n.Rhs[i], uncapped, escaping)
				}
			}
		}
		return true
	})
	return escaping
}

// markEscapes records any uncapped local appearing in expr as escaping.
func markEscapes(info *types.Info, expr ast.Expr, uncapped, escaping map[*types.Var]bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && uncapped[v] {
				escaping[v] = true
			}
		}
		return true
	})
}

// hasExplicitCap reports whether the initialiser gives the slice a
// capacity: make with three arguments, a full slice expression, or a
// value derived from an existing slice (x[:0] reuse).
func hasExplicitCap(info *types.Info, init ast.Expr) bool {
	switch e := ast.Unparen(init).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && info.Uses[id] == types.Universe.Lookup("make") {
			return len(e.Args) == 3
		}
		return true // opaque producer: trust it
	case *ast.SliceExpr:
		return true // reslicing existing storage
	case *ast.CompositeLit:
		return false // []T{} literal is flagged separately anyway
	case *ast.Ident, *ast.SelectorExpr:
		return true // aliasing existing storage
	}
	return false
}

package analysis_test

import (
	"path/filepath"
	"testing"

	ca "consumelocal/internal/analysis"
	"consumelocal/internal/analysis/atest"
)

func fixtures() string { return filepath.Join("testdata", "src") }

func TestBorrowCheck(t *testing.T) {
	// borrowseam first: borrowuse depends on its exported facts.
	atest.Run(t, fixtures(), ca.BorrowCheck, "borrowseam", "borrowuse")
}

func TestCtxSend(t *testing.T) {
	atest.Run(t, fixtures(), ca.CtxSend, "internal/engine")
}

func TestHotAlloc(t *testing.T) {
	atest.Run(t, fixtures(), ca.HotAlloc, "hotfix")
}

func TestMetricDecl(t *testing.T) {
	atest.Run(t, fixtures(), ca.MetricDecl, "metricfix")
}

func TestLockScope(t *testing.T) {
	atest.Run(t, fixtures(), ca.LockScope, "cmd/consumelocald")
}

func TestAllRegistersFiveAnalyzers(t *testing.T) {
	all := ca.All()
	if len(all) != 5 {
		t.Fatalf("All() returned %d analyzers, want 5", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing name, doc, or run function", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"borrowcheck", "ctxsend", "hotalloc", "metricdecl", "lockscope"} {
		if !seen[name] {
			t.Errorf("All() is missing analyzer %q", name)
		}
	}
}

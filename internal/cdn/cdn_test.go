package cdn

import (
	"errors"
	"math"
	"testing"
	"time"

	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

func simulate(t *testing.T, sessions ...trace.Session) *sim.Result {
	t.Helper()
	tr := &trace.Trace{
		Name:       "cdn-test",
		Epoch:      time.Unix(0, 0).UTC(),
		HorizonSec: 2 * 86400,
		NumUsers:   100,
		NumContent: 10,
		NumISPs:    2,
		Sessions:   sessions,
	}
	res, err := sim.Run(tr, sim.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func session(user uint32, isp uint8, start int64, dur int32) trace.Session {
	return trace.Session{
		UserID:      user,
		ContentID:   0,
		ISP:         isp,
		Exchange:    5,
		StartSec:    start,
		DurationSec: dur,
		Bitrate:     trace.BitrateSD,
	}
}

func TestProvisioningNoTraffic(t *testing.T) {
	res := &sim.Result{}
	if _, err := Provisioning(res); !errors.Is(err, ErrNoTraffic) {
		t.Errorf("expected ErrNoTraffic, got %v", err)
	}
}

func TestProvisioningLoneViewer(t *testing.T) {
	res := simulate(t, session(0, 0, 0, 3600))
	rep, err := Provisioning(res)
	if err != nil {
		t.Fatal(err)
	}
	// Without peers the server carries everything: no peak reduction.
	if rep.PeakReduction != 0 {
		t.Errorf("peak reduction = %v, want 0", rep.PeakReduction)
	}
	wantPeak := 1.5e6 * 3600 / 86400.0
	if math.Abs(rep.PeakBaselineBps-wantPeak) > 1e-6 {
		t.Errorf("peak baseline = %v, want %v", rep.PeakBaselineBps, wantPeak)
	}
	if rep.MeanReduction != 0 {
		t.Errorf("mean reduction = %v, want 0", rep.MeanReduction)
	}
}

func TestProvisioningPeakClippedHarderThanMean(t *testing.T) {
	// Day 0: a busy swarm of three overlapping viewers (peers absorb 2/3
	// of the demand). Day 1: one lone viewer (no sharing). The peak day's
	// server load drops, the quiet day's does not, so the peak reduction
	// must exceed the mean reduction... and the provisioned capacity is
	// set by the new busiest day.
	res := simulate(t,
		session(0, 0, 0, 3600),
		session(1, 0, 0, 3600),
		session(2, 0, 0, 3600),
		session(3, 0, 86400, 3600),
	)
	rep, err := Provisioning(res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakReduction <= 0 {
		t.Fatalf("peak reduction = %v, want positive", rep.PeakReduction)
	}
	if rep.PeakReduction <= rep.MeanReduction {
		t.Errorf("peak reduction %v should exceed mean reduction %v",
			rep.PeakReduction, rep.MeanReduction)
	}
	// Day 0 baseline: 3 sessions; hybrid day 0 server: 1 session's worth;
	// day 1 server: 1 session's worth. Peak hybrid = 1 session rate.
	wantBaseline := 3 * 1.5e6 * 3600 / 86400.0
	wantHybrid := 1 * 1.5e6 * 3600 / 86400.0
	if math.Abs(rep.PeakBaselineBps-wantBaseline) > 1 {
		t.Errorf("peak baseline = %v, want %v", rep.PeakBaselineBps, wantBaseline)
	}
	if math.Abs(rep.PeakHybridBps-wantHybrid) > 1 {
		t.Errorf("peak hybrid = %v, want %v", rep.PeakHybridBps, wantHybrid)
	}
}

func TestPerISP(t *testing.T) {
	res := simulate(t,
		session(0, 0, 0, 3600),
		session(1, 0, 0, 3600),
		session(2, 1, 0, 3600), // lone viewer on ISP 1
	)
	reports := PerISP(res)
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	if reports[0].PeakReduction <= 0 {
		t.Errorf("ISP 0 should see a peak reduction, got %v", reports[0].PeakReduction)
	}
	if reports[1].PeakReduction != 0 {
		t.Errorf("ISP 1 lone viewer should see none, got %v", reports[1].PeakReduction)
	}
}

func TestPerISPEmpty(t *testing.T) {
	if got := PerISP(&sim.Result{}); got != nil {
		t.Errorf("empty result should yield nil, got %v", got)
	}
}

func TestProvisioningOnGeneratedTrace(t *testing.T) {
	cfg := trace.DefaultGeneratorConfig(0.001)
	cfg.Days = 7
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	simCfg := sim.DefaultConfig(1)
	simCfg.TrackUsers = false
	res, err := sim.Run(tr, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Provisioning(res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakReduction <= 0 || rep.PeakReduction >= 1 {
		t.Errorf("peak reduction = %v, want within (0,1)", rep.PeakReduction)
	}
	if rep.PeakHybridBps >= rep.PeakBaselineBps {
		t.Errorf("hybrid peak %v should be below baseline %v",
			rep.PeakHybridBps, rep.PeakBaselineBps)
	}
}

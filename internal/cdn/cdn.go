// Package cdn analyses the CDN-side operational benefits of peer
// assistance beyond energy: the paper's introduction motivates hybrid
// CDNs by "decreasing its traffic costs, and costs of provisioning for
// peak loads" (Section VI). This package quantifies both from a
// simulation result:
//
//   - traffic offload: the share of bytes the CDN no longer serves;
//   - peak provisioning: the reduction in the server capacity the CDN
//     must provision for its busiest period.
//
// Peak analysis works at day granularity (the granularity the simulator
// records per ISP): the provisioning proxy is the busiest day's average
// server rate. Because peer assistance clips the popular-content peaks
// hardest, the peak reduction typically exceeds the mean traffic
// reduction — the effect the paper's operators care about.
package cdn

import (
	"errors"

	"consumelocal/internal/sim"
)

// ProvisioningReport quantifies the CDN capacity a deployment must
// provision, with and without peer assistance.
type ProvisioningReport struct {
	// PeakBaselineBps is the busiest day's average delivery rate when all
	// traffic is served by the CDN.
	PeakBaselineBps float64
	// PeakHybridBps is the busiest day's average server rate with peer
	// assistance enabled (the peak day may differ from the baseline's).
	PeakHybridBps float64
	// PeakReduction is 1 − PeakHybridBps/PeakBaselineBps.
	PeakReduction float64
	// MeanReduction is the overall traffic offload, for comparison
	// against the peak reduction.
	MeanReduction float64
}

// ErrNoTraffic is returned when the result carries no delivered traffic.
var ErrNoTraffic = errors.New("cdn: result has no traffic")

// Provisioning computes the provisioning report of a simulation result.
func Provisioning(res *sim.Result) (ProvisioningReport, error) {
	if res.Total.TotalBits <= 0 {
		return ProvisioningReport{}, ErrNoTraffic
	}
	const daySeconds = 24 * 3600.0

	var peakBaseline, peakHybrid float64
	for _, day := range res.DayTotals() {
		if rate := day.TotalBits / daySeconds; rate > peakBaseline {
			peakBaseline = rate
		}
		if rate := day.ServerBits / daySeconds; rate > peakHybrid {
			peakHybrid = rate
		}
	}
	if peakBaseline <= 0 {
		return ProvisioningReport{}, ErrNoTraffic
	}
	return ProvisioningReport{
		PeakBaselineBps: peakBaseline,
		PeakHybridBps:   peakHybrid,
		PeakReduction:   1 - peakHybrid/peakBaseline,
		MeanReduction:   res.Total.Offload(),
	}, nil
}

// PerISP computes one provisioning report per ISP. ISPs with no traffic
// get a zero-valued report.
func PerISP(res *sim.Result) []ProvisioningReport {
	if len(res.Days) == 0 {
		return nil
	}
	const daySeconds = 24 * 3600.0
	isps := len(res.Days[0])
	out := make([]ProvisioningReport, isps)

	totals := res.ISPTotals()
	for isp := 0; isp < isps; isp++ {
		var peakBaseline, peakHybrid float64
		for _, day := range res.Days {
			if rate := day[isp].TotalBits / daySeconds; rate > peakBaseline {
				peakBaseline = rate
			}
			if rate := day[isp].ServerBits / daySeconds; rate > peakHybrid {
				peakHybrid = rate
			}
		}
		if peakBaseline <= 0 {
			continue
		}
		out[isp] = ProvisioningReport{
			PeakBaselineBps: peakBaseline,
			PeakHybridBps:   peakHybrid,
			PeakReduction:   1 - peakHybrid/peakBaseline,
			MeanReduction:   totals[isp].Offload(),
		}
	}
	return out
}

package mminf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestCapacityLittlesLaw(t *testing.T) {
	tests := []struct {
		name     string
		duration float64
		rate     float64
		want     float64
	}{
		{name: "unit", duration: 1, rate: 1, want: 1},
		{name: "half hour show", duration: 1800, rate: 0.0385, want: 69.3},
		{name: "zero duration", duration: 0, rate: 5, want: 0},
		{name: "negative rate", duration: 100, rate: -1, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Capacity(tt.duration, tt.rate); !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("Capacity = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestOnlineProbability(t *testing.T) {
	tests := []struct {
		c    float64
		want float64
	}{
		{0, 0},
		{-1, 0},
		{1, 1 - math.Exp(-1)},
		{10, 1 - math.Exp(-10)},
	}
	for _, tt := range tests {
		if got := OnlineProbability(tt.c); !almostEqual(got, tt.want, 1e-15) {
			t.Errorf("OnlineProbability(%v) = %v, want %v", tt.c, got, tt.want)
		}
	}
}

func TestOccupancyPMFSumsToOne(t *testing.T) {
	for _, c := range []float64{0.1, 1, 5, 50} {
		var sum float64
		for k := 0; k < 400; k++ {
			sum += OccupancyPMF(k, c)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("PMF(c=%v) sums to %v, want 1", c, sum)
		}
	}
}

func TestOccupancyPMFEdgeCases(t *testing.T) {
	if got := OccupancyPMF(0, 0); got != 1 {
		t.Errorf("PMF(0;0) = %v, want 1", got)
	}
	if got := OccupancyPMF(3, 0); got != 0 {
		t.Errorf("PMF(3;0) = %v, want 0", got)
	}
	if got := OccupancyPMF(-1, 2); got != 0 {
		t.Errorf("PMF(-1;2) = %v, want 0", got)
	}
	if got := OccupancyPMF(2, -1); got != 0 {
		t.Errorf("PMF(2;-1) = %v, want 0", got)
	}
}

func TestOccupancyPMFLargeCapacityIsFinite(t *testing.T) {
	got := OccupancyPMF(10000, 10000)
	if math.IsNaN(got) || math.IsInf(got, 0) || got <= 0 {
		t.Errorf("PMF(10000;10000) = %v, want a finite positive value", got)
	}
}

func TestExpectedSharers(t *testing.T) {
	tests := []struct {
		c    float64
		want float64
	}{
		{0, 0},
		{-3, 0},
		{1, math.Exp(-1)}, // 1 - 1 + e^-1
		{10, 9 + math.Exp(-10)},
	}
	for _, tt := range tests {
		if got := ExpectedSharers(tt.c); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("ExpectedSharers(%v) = %v, want %v", tt.c, got, tt.want)
		}
	}
}

// ExpectedSharers must agree with the direct Poisson sum E[(L-1)+].
func TestExpectedSharersMatchesDirectSum(t *testing.T) {
	for _, c := range []float64{0.25, 1, 4, 20} {
		var sum float64
		for k := 2; k < 300; k++ {
			sum += float64(k-1) * OccupancyPMF(k, c)
		}
		got := ExpectedSharers(c)
		if !almostEqual(got, sum, 1e-9) {
			t.Errorf("c=%v: closed form %v != direct sum %v", c, got, sum)
		}
	}
}

func TestOffloadFraction(t *testing.T) {
	// Paper footnote 3: at c = 1, G = 0.37 q/β.
	got := OffloadFraction(1, 1)
	if !almostEqual(got, math.Exp(-1), 1e-12) {
		t.Errorf("G(1, 1) = %v, want e^-1 = 0.3679", got)
	}
	if got := OffloadFraction(1, 0.5); !almostEqual(got, 0.5*math.Exp(-1), 1e-12) {
		t.Errorf("G(1, 0.5) = %v", got)
	}
	if got := OffloadFraction(0, 1); got != 0 {
		t.Errorf("G(0, 1) = %v, want 0", got)
	}
	if got := OffloadFraction(5, 0); got != 0 {
		t.Errorf("G(5, 0) = %v, want 0", got)
	}
}

func TestOffloadFractionClampedToOne(t *testing.T) {
	// Enormous upload capacity cannot offload more than all the traffic.
	if got := OffloadFraction(100, 10); got != 1 {
		t.Errorf("G(100, 10) = %v, want clamp at 1", got)
	}
}

func TestOffloadFractionMonotoneInCapacity(t *testing.T) {
	prev := 0.0
	for _, c := range []float64{0.01, 0.1, 0.5, 1, 2, 5, 10, 100, 1000} {
		g := OffloadFraction(c, 0.8)
		if g < prev {
			t.Errorf("G should be monotone in c: G(%v) = %v < previous %v", c, g, prev)
		}
		prev = g
	}
}

func TestOffloadFractionAsymptote(t *testing.T) {
	// As c grows, G -> q/β.
	if got := OffloadFraction(1e6, 0.8); !almostEqual(got, 0.8, 1e-5) {
		t.Errorf("G(1e6, 0.8) = %v, want ~0.8", got)
	}
}

func TestLayerExpectationValidation(t *testing.T) {
	if _, err := LayerExpectation(0.5, -1); err == nil {
		t.Error("negative capacity should error")
	}
	if _, err := LayerExpectation(0.5, math.NaN()); err == nil {
		t.Error("NaN capacity should error")
	}
	if _, err := LayerExpectation(-0.1, 1); err == nil {
		t.Error("negative probability should error")
	}
	if _, err := LayerExpectation(1.1, 1); err == nil {
		t.Error("probability above 1 should error")
	}
}

func TestLayerExpectationAtPOne(t *testing.T) {
	// f(1, c) must equal the paper's printed p=1 branch c - 1 + e^-c.
	for _, c := range []float64{0.1, 1, 5, 42} {
		got, err := LayerExpectation(1, c)
		if err != nil {
			t.Fatal(err)
		}
		want := c - 1 + math.Exp(-c)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("f(1,%v) = %v, want %v", c, got, want)
		}
	}
}

func TestLayerExpectationContinuousAtPOne(t *testing.T) {
	// The closed form for p<1 must converge to the p=1 branch.
	for _, c := range []float64{0.5, 3, 17} {
		limit, err := LayerExpectation(1, c)
		if err != nil {
			t.Fatal(err)
		}
		near, err := LayerExpectation(1-1e-7, c)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(limit, near, 1e-5) {
			t.Errorf("c=%v: f(p->1) = %v, f(1) = %v", c, near, limit)
		}
	}
}

func TestLayerExpectationZeroCases(t *testing.T) {
	got, err := LayerExpectation(0.5, 0)
	if err != nil || got != 0 {
		t.Errorf("f(0.5, 0) = %v, %v; want 0, nil", got, err)
	}
	got, err = LayerExpectation(0, 10)
	if err != nil || got != 0 {
		t.Errorf("f(0, 10) = %v, %v; want 0, nil", got, err)
	}
}

// The closed form of LayerExpectation must match the direct Poisson sum
// E[(L-1)+ (1-(1-p)^{L-1})] across the whole parameter plane used by the
// experiments.
func TestLayerExpectationMatchesDirectSum(t *testing.T) {
	probs := []float64{1.0 / 345, 1.0 / 9, 0.3, 0.9, 1}
	caps := []float64{0.01, 0.2, 1, 3, 10, 60}
	for _, p := range probs {
		for _, c := range caps {
			var sum float64
			for k := 2; k < 500; k++ {
				sum += float64(k-1) * (1 - math.Pow(1-p, float64(k-1))) * OccupancyPMF(k, c)
			}
			got, err := LayerExpectation(p, c)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, sum, 1e-8*(1+sum)) {
				t.Errorf("f(%v,%v) = %v, direct sum %v", p, c, got, sum)
			}
		}
	}
}

func TestLayerExpectationMonotoneInP(t *testing.T) {
	// A higher localisation probability can only increase the expectation.
	for _, c := range []float64{0.5, 2, 25} {
		prev := -1.0
		for _, p := range []float64{0.001, 0.01, 0.1, 0.5, 0.9, 1} {
			got, err := LayerExpectation(p, c)
			if err != nil {
				t.Fatal(err)
			}
			if got < prev-1e-12 {
				t.Errorf("f not monotone in p at c=%v: f(%v)=%v < %v", c, p, got, prev)
			}
			prev = got
		}
	}
}

func TestLayerExpectationBoundedBySharers(t *testing.T) {
	// f(p,c) <= E[(L-1)+] always, with equality at p=1.
	f := func(rawP, rawC float64) bool {
		p := math.Abs(math.Mod(rawP, 1))
		c := math.Abs(math.Mod(rawC, 100))
		got, err := LayerExpectation(p, c)
		if err != nil {
			return false
		}
		return got <= ExpectedSharers(c)+1e-9 && got >= 0
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values:   nil,
		Rand:     rand.New(rand.NewSource(7)),
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMeanOccupancyConditionedNonEmpty(t *testing.T) {
	if got := MeanOccupancyConditionedNonEmpty(0); got != 0 {
		t.Errorf("conditioned mean at c=0 = %v, want 0", got)
	}
	// For large c the conditioning hardly matters: E[L | L>=1] ~ c.
	if got := MeanOccupancyConditionedNonEmpty(50); !almostEqual(got, 50, 1e-9) {
		t.Errorf("conditioned mean at c=50 = %v, want ~50", got)
	}
	// For tiny c it approaches 1: a swarm observed busy holds one user.
	if got := MeanOccupancyConditionedNonEmpty(0.001); !almostEqual(got, 1, 1e-3) {
		t.Errorf("conditioned mean at c=0.001 = %v, want ~1", got)
	}
}

// Monte-Carlo check: simulate an M/M/∞ queue and verify occupancy mean and
// the offload fraction emerge from sampled dynamics. This ties the
// analytic building blocks to actual queue behaviour.
func TestMonteCarloMMInfinity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const (
		rate     = 0.05  // arrivals per second
		duration = 100.0 // mean session seconds
		horizon  = 400000.0
	)
	wantC := rate * duration

	type session struct{ start, end float64 }
	var sessions []session
	tNow := 0.0
	for tNow < horizon {
		tNow += rng.ExpFloat64() / rate
		d := rng.ExpFloat64() * duration
		sessions = append(sessions, session{start: tNow, end: tNow + d})
	}

	// Estimate average occupancy by sampling at regular instants.
	var occSum float64
	var samples int
	for x := horizon * 0.1; x < horizon*0.9; x += 50 {
		var l int
		for _, s := range sessions {
			if s.start <= x && x < s.end {
				l++
			}
		}
		occSum += float64(l)
		samples++
	}
	gotC := occSum / float64(samples)
	if math.Abs(gotC-wantC)/wantC > 0.10 {
		t.Errorf("Monte-Carlo occupancy %v deviates >10%% from Little's law %v", gotC, wantC)
	}
}

// Package mminf implements the M/M/∞ queueing mathematics that underpins
// the paper's swarm model (Section III.B–III.C of Raman et al., "Consume
// Local: Towards Carbon Free Content Delivery", ICDCS 2018).
//
// A content swarm is modelled as an M/M/∞ system: users arrive in Poisson
// fashion at rate r, stay for an average session duration u, and are served
// instantly by fellow swarm members. By Little's law the average number of
// concurrent users — the swarm's *capacity* — is c = u·r, and the
// instantaneous occupancy L is Poisson distributed with mean c.
//
// The package provides:
//   - the occupancy distribution and the probability of a non-empty swarm,
//   - the expected number of uploading peers E[(L−1)⁺],
//   - the traffic offload fraction G(c, q/β) (paper Eq. 3),
//   - the layer-localisation expectation f(p, c) used to price P2P network
//     hops (paper Eq. 10–11, re-derived; see below).
//
// Re-derivation note for f(p, c): the printed Eq. 11 is typographically
// corrupted in the accessible manuscript (its p<1 branch is discontinuous
// against the printed p=1 branch). We therefore implement the quantity the
// derivation actually requires,
//
//	f(p, c) = E[(L−1)⁺ · (1 − (1−p)^(L−1))],  L ~ Poisson(c),
//
// i.e. the expected number of uploading peers weighted by the probability
// that a given downloader finds at least one peer within a topology layer
// where each peer independently falls in the layer with probability p.
// Closed form (derived via the Poisson generating function):
//
//	f(p, c) = c − 1 − c·e^(−cp) + (e^(−cp) − p·e^(−c)) / (1 − p),  p < 1
//	f(1, c) = c − 1 + e^(−c)
//
// The p<1 branch converges to the p=1 branch as p→1 (verified by tests) and
// reproduces the paper's printed p=1 expression exactly.
package mminf

import (
	"errors"
	"math"
)

// ErrInvalidCapacity is returned when a negative or non-finite swarm
// capacity is supplied.
var ErrInvalidCapacity = errors.New("mminf: capacity must be finite and non-negative")

// Capacity returns the swarm capacity c = u·r given the mean session
// duration u (seconds) and mean arrival rate r (sessions per second),
// following Little's law for the M/M/∞ queue.
func Capacity(meanSessionSeconds, arrivalRatePerSecond float64) float64 {
	if meanSessionSeconds <= 0 || arrivalRatePerSecond <= 0 {
		return 0
	}
	return meanSessionSeconds * arrivalRatePerSecond
}

// OnlineProbability returns p = P(L >= 1) = 1 − e^(−c), the probability
// that a swarm of capacity c has at least one user online.
func OnlineProbability(c float64) float64 {
	if c <= 0 {
		return 0
	}
	// -math.Expm1(-c) = 1 - e^{-c} with full precision for small c.
	return -math.Expm1(-c)
}

// OccupancyPMF returns P(L = k) for L ~ Poisson(c). It computes in log
// space to stay finite for large c and k.
func OccupancyPMF(k int, c float64) float64 {
	if k < 0 || c < 0 {
		return 0
	}
	if c == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(c) - c - lg)
}

// ExpectedSharers returns E[(L−1)⁺] = c − 1 + e^(−c) for L ~ Poisson(c):
// the expected number of peers able to upload to somebody else in the
// swarm. This is the swarm-size term of the paper's Eq. 3.
func ExpectedSharers(c float64) float64 {
	if c <= 0 {
		return 0
	}
	// c - 1 + e^{-c} = c + expm1(-c) - underflow-free for small c.
	v := c + math.Expm1(-c)
	if v < 0 { // guard tiny negative rounding for c ~ 1e-16
		return 0
	}
	return v
}

// OffloadFraction returns G, the fraction of swarm traffic that can be
// served by peers rather than CDN servers (paper Eq. 3):
//
//	G = (q/β) · (c + e^(−c) − 1) / c
//
// uploadToBitrateRatio is q/β, the ratio between per-user upload bandwidth
// and the content bitrate. The result is clamped to [0, 1]: offload can
// never exceed total demand regardless of the upload capacity available.
// For c <= 0 the function returns 0 (an empty swarm offloads nothing).
func OffloadFraction(c, uploadToBitrateRatio float64) float64 {
	if c <= 0 || uploadToBitrateRatio <= 0 {
		return 0
	}
	g := uploadToBitrateRatio * ExpectedSharers(c) / c
	if g > 1 {
		return 1
	}
	return g
}

// LayerExpectation returns f(p, c) = E[(L−1)⁺ · (1 − (1−p)^(L−1))] for
// L ~ Poisson(c): the expected uploading-peer count weighted by the
// probability that a downloader can be matched within a topology layer
// whose per-peer localisation probability is p.
//
// Errors: p outside [0, 1] or invalid c.
func LayerExpectation(p, c float64) (float64, error) {
	if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
		return 0, ErrInvalidCapacity
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return 0, errors.New("mminf: localisation probability must be in [0,1]")
	}
	if c == 0 || p == 0 {
		return 0, nil
	}
	if closeToOne(p) {
		return ExpectedSharers(c), nil
	}
	ecp := math.Exp(-c * p)
	ec := math.Exp(-c)
	v := c - 1 - c*ecp + (ecp-p*ec)/(1-p)
	if v < 0 { // tiny negative rounding near c -> 0
		return 0, nil
	}
	return v, nil
}

// closeToOne reports whether the p<1 closed form would be numerically
// unstable; beyond this threshold we use the exact p=1 limit instead.
func closeToOne(p float64) bool {
	return 1-p < 1e-9
}

// MeanOccupancyConditionedNonEmpty returns E[L | L >= 1] = c / (1−e^(−c)),
// the average number of users seen in a swarm during the periods when the
// swarm is active. This is the quantity an observer of a trace measures
// when averaging only over busy windows.
func MeanOccupancyConditionedNonEmpty(c float64) float64 {
	if c <= 0 {
		return 0
	}
	return c / OnlineProbability(c)
}

package stats

import (
	"math"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins should be rejected")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("empty range should be rejected")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Error("inverted range should be rejected")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 9.9, -1, 10, 100} {
		h.Add(x)
	}
	bins := h.Bins()
	want := []int{2, 1, 0, 0, 1}
	for i := range want {
		if bins[i] != want[i] {
			t.Errorf("bin %d = %d, want %d", i, bins[i], want[i])
		}
	}
	if h.Under() != 1 {
		t.Errorf("Under = %d, want 1", h.Under())
	}
	if h.Over() != 2 {
		t.Errorf("Over = %d, want 2", h.Over())
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
}

func TestHistogramNaN(t *testing.T) {
	h, err := NewHistogram(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(math.NaN())
	if h.Total() != 1 {
		t.Errorf("NaN should count toward the total, got %d", h.Total())
	}
	if h.Under() != 0 || h.Over() != 0 {
		t.Error("NaN should not land in under/over")
	}
	for i, c := range h.Bins() {
		if c != 0 {
			t.Errorf("NaN landed in bin %d", i)
		}
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Errorf("BinCenter(4) = %v, want 9", got)
	}
}

func TestHistogramPoints(t *testing.T) {
	h, err := NewHistogram(0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Points() != nil {
		t.Error("empty histogram should render nil points")
	}
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.Add(100) // over: reduces in-range mass
	points := h.Points()
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	if !ApproxEqual(points[0].Y, 0.5, 1e-12) {
		t.Errorf("bin 0 density = %v, want 0.5", points[0].Y)
	}
	if !ApproxEqual(points[1].Y, 0.25, 1e-12) {
		t.Errorf("bin 1 density = %v, want 0.25", points[1].Y)
	}
}

func TestHistogramUpperEdgeRounding(t *testing.T) {
	// A value infinitesimally below the upper bound must land in the last
	// bin, not panic or overflow the slice.
	h, err := NewHistogram(0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(math.Nextafter(1, 0))
	if got := h.Bins()[2]; got != 1 {
		t.Errorf("near-upper-edge sample landed in wrong bin: %v", h.Bins())
	}
}

package stats

import (
	"errors"
	"math"
)

// Histogram accumulates samples into fixed-width bins over [Lo, Hi).
// Samples outside the range are counted in Under/Over. The zero value is
// not usable; construct with NewHistogram.
type Histogram struct {
	lo, hi float64
	width  float64
	counts []int
	under  int
	over   int
	total  int
}

// NewHistogram creates a histogram with n equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		return nil, errors.New("stats: histogram range must satisfy hi > lo")
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(n),
		counts: make([]int, n),
	}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case math.IsNaN(x):
		// NaN samples are counted in the total but in no bin; they would
		// otherwise silently distort bin probabilities.
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		idx := int((x - h.lo) / h.width)
		if idx >= len(h.counts) { // guard float rounding at the upper edge
			idx = len(h.counts) - 1
		}
		h.counts[idx]++
	}
}

// Total returns the number of samples added, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// Under returns the number of samples below the histogram range.
func (h *Histogram) Under() int { return h.under }

// Over returns the number of samples at or above the upper bound.
func (h *Histogram) Over() int { return h.over }

// Bins returns a copy of the per-bin counts.
func (h *Histogram) Bins() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.width
}

// Points renders the histogram as density points (bin center, fraction of
// total samples in bin). Out-of-range samples reduce the in-range mass.
func (h *Histogram) Points() []Point {
	if h.total == 0 {
		return nil
	}
	out := make([]Point, len(h.counts))
	for i, c := range h.counts {
		out[i] = Point{X: h.BinCenter(i), Y: float64(c) / float64(h.total)}
	}
	return out
}

// Package stats provides small, allocation-conscious numeric helpers used
// throughout the consumelocal experiments: empirical distribution functions,
// quantiles, histograms and axis generators for parameter sweeps.
//
// The package is intentionally free of any simulation or energy-model
// concepts so that it can be tested in isolation and reused by every other
// module.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by summary functions that are undefined on empty
// inputs.
var ErrEmpty = errors.New("stats: empty input")

// Point is a single (X, Y) sample of an empirical function, e.g. one point
// of a CDF or CCDF curve.
type Point struct {
	X float64
	Y float64
}

// Mean returns the arithmetic mean of xs. It returns 0 for empty input so
// that callers aggregating optional series do not need a special case; use
// MeanChecked when emptiness is an error.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanChecked returns the arithmetic mean of xs, or ErrEmpty when xs is
// empty.
func MeanChecked(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Mean(xs), nil
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the population variance of xs (division by n, not n-1).
// It returns 0 when xs has fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. The input does not need to be
// sorted. It returns ErrEmpty for empty input and an error for q outside
// [0, 1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// quantileSorted computes the q-th quantile of an already sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// CDF returns the empirical cumulative distribution function of xs as a
// sequence of (value, P(X <= value)) points, one per distinct sample value,
// in increasing order of value. It returns nil for empty input.
func CDF(xs []float64) []Point {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	n := float64(len(sorted))
	points := make([]Point, 0, len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values into a single point carrying the
		// highest cumulative probability for that value.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		points = append(points, Point{X: sorted[i], Y: float64(i+1) / n})
	}
	return points
}

// CCDF returns the empirical complementary CDF of xs as a sequence of
// (value, P(X >= value)) points, one per distinct sample value, in
// increasing order of value. This matches the axes used by the paper's
// Fig. 3 (log-log CCDF of per-swarm capacity and savings).
func CCDF(xs []float64) []Point {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	n := float64(len(sorted))
	points := make([]Point, 0, len(sorted))
	for i := 0; i < len(sorted); i++ {
		// First index of each run of equal values carries P(X >= value).
		if i > 0 && sorted[i] == sorted[i-1] {
			continue
		}
		points = append(points, Point{X: sorted[i], Y: float64(len(sorted)-i) / n})
	}
	return points
}

// FractionAbove returns the fraction of samples strictly greater than
// threshold.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var count int
	for _, x := range xs {
		if x > threshold {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// FractionAtLeast returns the fraction of samples greater than or equal to
// threshold.
func FractionAtLeast(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var count int
	for _, x := range xs {
		if x >= threshold {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// LinSpace returns n evenly spaced values covering [lo, hi] inclusive.
// n must be at least 2; smaller n returns a single-element slice holding lo.
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// LogSpace returns n logarithmically spaced values covering [lo, hi]
// inclusive. Both bounds must be positive; n must be at least 2, otherwise
// a single-element slice holding lo is returned.
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= 0 {
		return []float64{lo}
	}
	out := make([]float64, n)
	logLo, logHi := math.Log(lo), math.Log(hi)
	step := (logHi - logLo) / float64(n-1)
	for i := range out {
		out[i] = math.Exp(logLo + float64(i)*step)
	}
	out[n-1] = hi
	return out
}

// WeightedMean returns the weighted mean of values with the given weights.
// Entries with non-positive weight are ignored. It returns 0 when the
// total weight is 0.
func WeightedMean(values, weights []float64) float64 {
	n := len(values)
	if len(weights) < n {
		n = len(weights)
	}
	var sum, wsum float64
	for i := 0; i < n; i++ {
		if weights[i] <= 0 {
			continue
		}
		sum += values[i] * weights[i]
		wsum += weights[i]
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// Clamp limits x to the inclusive range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ApproxEqual reports whether a and b are equal within absolute tolerance
// tol. NaN values are never approximately equal.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

// RelativeError returns |a-b| / max(|a|,|b|, eps) with eps guarding the
// all-zero case. It is the comparison metric used by the theory-versus-
// simulation agreement tests.
func RelativeError(a, b float64) float64 {
	denom := math.Max(math.Abs(a), math.Abs(b))
	if denom < 1e-12 {
		return 0
	}
	return math.Abs(a-b) / denom
}

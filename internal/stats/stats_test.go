package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{name: "empty", in: nil, want: 0},
		{name: "single", in: []float64{5}, want: 5},
		{name: "pair", in: []float64{2, 4}, want: 3},
		{name: "negative", in: []float64{-1, 1}, want: 0},
		{name: "fractional", in: []float64{1, 2, 3, 4}, want: 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); got != tt.want {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMeanChecked(t *testing.T) {
	if _, err := MeanChecked(nil); err != ErrEmpty {
		t.Errorf("MeanChecked(nil) error = %v, want ErrEmpty", err)
	}
	got, err := MeanChecked([]float64{1, 3})
	if err != nil {
		t.Fatalf("MeanChecked returned unexpected error: %v", err)
	}
	if got != 2 {
		t.Errorf("MeanChecked = %v, want 2", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Errorf("Sum = %v, want 3", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !ApproxEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !ApproxEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v) error: %v", tt.q, err)
		}
		if !ApproxEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	got, err := Quantile([]float64{10, 20}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(got, 15, 1e-12) {
		t.Errorf("Quantile = %v, want 15", got)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("empty input error = %v, want ErrEmpty", err)
	}
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := Quantile([]float64{1}, q); err == nil {
			t.Errorf("Quantile(q=%v) expected error", q)
		}
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{9, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
}

func TestCDF(t *testing.T) {
	points := CDF([]float64{1, 2, 2, 3})
	want := []Point{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(points) != len(want) {
		t.Fatalf("CDF returned %d points, want %d", len(points), len(want))
	}
	for i := range want {
		if !ApproxEqual(points[i].X, want[i].X, 1e-12) || !ApproxEqual(points[i].Y, want[i].Y, 1e-12) {
			t.Errorf("CDF[%d] = %+v, want %+v", i, points[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestCCDF(t *testing.T) {
	points := CCDF([]float64{1, 2, 2, 3})
	want := []Point{{1, 1}, {2, 0.75}, {3, 0.25}}
	if len(points) != len(want) {
		t.Fatalf("CCDF returned %d points, want %d", len(points), len(want))
	}
	for i := range want {
		if !ApproxEqual(points[i].X, want[i].X, 1e-12) || !ApproxEqual(points[i].Y, want[i].Y, 1e-12) {
			t.Errorf("CCDF[%d] = %+v, want %+v", i, points[i], want[i])
		}
	}
}

func TestCDFAndCCDFAreComplementary(t *testing.T) {
	// For every distinct value v: P(X <= v) + P(X > v) = 1, where
	// P(X > v) = CCDF at the next distinct value (or 0 past the max).
	xs := []float64{1, 1, 2, 5, 5, 5, 9}
	cdf := CDF(xs)
	ccdf := CCDF(xs)
	if len(cdf) != len(ccdf) {
		t.Fatalf("point count mismatch: %d vs %d", len(cdf), len(ccdf))
	}
	for i := range cdf {
		var pAbove float64
		if i+1 < len(ccdf) {
			pAbove = ccdf[i+1].Y
		}
		if !ApproxEqual(cdf[i].Y+pAbove, 1, 1e-12) {
			t.Errorf("value %v: CDF %v + CCDF-next %v != 1", cdf[i].X, cdf[i].Y, pAbove)
		}
	}
}

func TestFractionAboveAndAtLeast(t *testing.T) {
	xs := []float64{-1, 0, 0, 1, 2}
	if got := FractionAbove(xs, 0); got != 0.4 {
		t.Errorf("FractionAbove = %v, want 0.4", got)
	}
	if got := FractionAtLeast(xs, 0); got != 0.8 {
		t.Errorf("FractionAtLeast = %v, want 0.8", got)
	}
	if got := FractionAbove(nil, 0); got != 0 {
		t.Errorf("FractionAbove(nil) = %v, want 0", got)
	}
}

func TestLinSpace(t *testing.T) {
	got := LinSpace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(got) != len(want) {
		t.Fatalf("LinSpace returned %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if !ApproxEqual(got[i], want[i], 1e-12) {
			t.Errorf("LinSpace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := LinSpace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("LinSpace(n=1) = %v, want [3]", got)
	}
}

func TestLogSpace(t *testing.T) {
	got := LogSpace(0.01, 100, 5)
	want := []float64{0.01, 0.1, 1, 10, 100}
	if len(got) != len(want) {
		t.Fatalf("LogSpace returned %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if !ApproxEqual(got[i], want[i], 1e-9) {
			t.Errorf("LogSpace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := LogSpace(-1, 10, 4); len(got) != 1 {
		t.Errorf("LogSpace with non-positive bound should degrade to single value, got %v", got)
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if !ApproxEqual(got, 2.5, 1e-12) {
		t.Errorf("WeightedMean = %v, want 2.5", got)
	}
	if got := WeightedMean([]float64{1, 2}, []float64{0, 0}); got != 0 {
		t.Errorf("WeightedMean with zero weights = %v, want 0", got)
	}
	// Negative weights are ignored rather than inverting the mean.
	got = WeightedMean([]float64{1, 100}, []float64{1, -5})
	if got != 1 {
		t.Errorf("WeightedMean with negative weight = %v, want 1", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("values within tolerance should be approximately equal")
	}
	if ApproxEqual(1.0, 1.1, 1e-9) {
		t.Error("values outside tolerance should not be approximately equal")
	}
	if ApproxEqual(math.NaN(), math.NaN(), 1) {
		t.Error("NaN should never be approximately equal")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(100, 110); !ApproxEqual(got, 10.0/110.0, 1e-12) {
		t.Errorf("RelativeError = %v", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Errorf("RelativeError(0,0) = %v, want 0", got)
	}
}

// Property: the CDF is monotonically non-decreasing and ends at exactly 1.
func TestCDFPropertyMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		points := CDF(xs)
		prevX := math.Inf(-1)
		prevY := 0.0
		for _, p := range points {
			if p.X <= prevX || p.Y < prevY {
				return false
			}
			prevX, prevY = p.X, p.Y
		}
		return ApproxEqual(points[len(points)-1].Y, 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the CCDF starts at exactly 1 and is strictly decreasing in Y
// across distinct values.
func TestCCDFPropertyMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		points := CCDF(xs)
		if !ApproxEqual(points[0].Y, 1, 1e-12) {
			return false
		}
		for i := 1; i < len(points); i++ {
			if points[i].Y >= points[i-1].Y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantilePropertyMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		q25, err1 := Quantile(xs, 0.25)
		q50, err2 := Quantile(xs, 0.5)
		q75, err3 := Quantile(xs, 0.75)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		lo, _ := Quantile(xs, 0)
		hi, _ := Quantile(xs, 1)
		return lo <= q25 && q25 <= q50 && q50 <= q75 && q75 <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sanitize filters NaN/Inf out of generator output so that the properties
// test the documented domain.
func sanitize(raw []float64) []float64 {
	out := raw[:0:0]
	for _, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		out = append(out, x)
	}
	return out
}

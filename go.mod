module consumelocal

go 1.24

// golang.org/x/tools is the repo's first (and only) dependency: it
// provides the go/analysis framework cmd/consumelocal-vet builds its
// repo-specific analyzers on, including the unitchecker driver that
// lets the suite run under `go vet -vettool=`. The dependency is
// vendored (vendor/golang.org/x/tools) from the Go toolchain's own
// cmd/vendor copy so builds need no network; only the go/analysis
// import closure is carried, not the full module.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e

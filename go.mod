module consumelocal

go 1.24

// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment harness at
// a reduced trace scale and reports, through custom metrics, the headline
// quantity of that artefact — so a `go test -bench=.` run doubles as a
// compact reproduction report:
//
//	BenchmarkTable1DatasetSummary      users/IPs/sessions of the dataset
//	BenchmarkTable3Localisation        per-layer localisation probabilities
//	BenchmarkTable4EnergyParams        ψs per model
//	BenchmarkFig2SavingsVsCapacity     popular-item savings per model
//	BenchmarkFig3SwarmDistributions    median per-swarm savings
//	BenchmarkFig4DailySavings          ISP-1 month-average savings
//	BenchmarkFig5SavingsDecomposition  asymptotic CCT per model
//	BenchmarkFig6UserCCT               carbon positive user share
//	BenchmarkAblation*                 design-choice ablations
//	BenchmarkCDNPeakProvisioning       peak server-capacity reduction
//	BenchmarkLiveVsCatchUp             live-broadcast savings (future work)
//
// Reported custom metrics are fractions (e.g. 0.30 = 30% savings) unless
// the metric name says otherwise.
package consumelocal_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"consumelocal/internal/carbon"
	"consumelocal/internal/chunksim"
	"consumelocal/internal/core"
	"consumelocal/internal/energy"
	"consumelocal/internal/engine"
	"consumelocal/internal/experiments"
	"consumelocal/internal/matching"
	"consumelocal/internal/mminf"
	"consumelocal/internal/sim"
	"consumelocal/internal/topology"
	"consumelocal/internal/trace"
)

// benchConfig is the shared reduced-scale experiment configuration. Scale
// 0.004 keeps a full -bench=. sweep under a couple of minutes while
// preserving the qualitative shape of every figure; rerun with the
// consumelocal CLI at -scale 0.05 or above for levels closer to the
// paper's full-size dataset.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 0.004
	cfg.Days = 14
	return cfg
}

func BenchmarkTable1DatasetSummary(b *testing.B) {
	var users, sessions int
	for i := 0; i < b.N; i++ {
		table, err := experiments.Table1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		users = parseBenchCount(b, table.Rows[0][1])
		sessions = parseBenchCount(b, table.Rows[2][1])
	}
	b.ReportMetric(float64(users), "users")
	b.ReportMetric(float64(sessions), "sessions")
}

func BenchmarkTable3Localisation(b *testing.B) {
	var pexp float64
	for i := 0; i < b.N; i++ {
		probs := topology.DefaultLondon().Probabilities()
		pexp = probs.Exchange
	}
	b.ReportMetric(pexp, "p_exchange")
}

func BenchmarkTable4EnergyParams(b *testing.B) {
	var psiV, psiB float64
	for i := 0; i < b.N; i++ {
		psiV = energy.Valancius().ServerPerBit()
		psiB = energy.Baliga().ServerPerBit()
	}
	b.ReportMetric(psiV, "psi_s_valancius_nJ/bit")
	b.ReportMetric(psiB, "psi_s_baliga_nJ/bit")
}

func BenchmarkFig2SavingsVsCapacity(b *testing.B) {
	var valancius, baliga float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		valancius = maxSimSavings(res.Simulation[0], "sim popular")
		baliga = maxSimSavings(res.Simulation[1], "sim popular")
	}
	b.ReportMetric(valancius, "popular_savings_valancius")
	b.ReportMetric(baliga, "popular_savings_baliga")
}

// maxSimSavings extracts the best simulated savings of a tier.
func maxSimSavings(ds experiments.Dataset, prefix string) float64 {
	best := 0.0
	for _, s := range ds.Series {
		if !strings.HasPrefix(s.Name, prefix) {
			continue
		}
		for _, p := range s.Points {
			if p.Y > best {
				best = p.Y
			}
		}
	}
	return best
}

func BenchmarkFig3SwarmDistributions(b *testing.B) {
	var medianV float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		medianV = parseBenchPercent(b, res.Summary.Rows[0][1]) / 100
	}
	b.ReportMetric(medianV, "median_swarm_savings_valancius")
}

func BenchmarkFig4DailySavings(b *testing.B) {
	var isp1V, isp1B float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		isp1V = parseBenchPercent(b, res.Summary.Rows[0][2]) / 100
		isp1B = parseBenchPercent(b, res.Summary.Rows[len(res.Summary.Rows)/2][2]) / 100
	}
	b.ReportMetric(isp1V, "isp1_savings_valancius")
	b.ReportMetric(isp1B, "isp1_savings_baliga")
}

func BenchmarkFig5SavingsDecomposition(b *testing.B) {
	var cctV, cctB float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		cctV = parseBenchPercent(b, res.Summary.Rows[1][1]) / 100
		cctB = parseBenchPercent(b, res.Summary.Rows[1][2]) / 100
	}
	b.ReportMetric(cctV, "asymptotic_cct_valancius")
	b.ReportMetric(cctB, "asymptotic_cct_baliga")
}

func BenchmarkFig6UserCCT(b *testing.B) {
	var positiveV, positiveB float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		positiveV = parseBenchPercent(b, res.Summary.Rows[0][1]) / 100
		positiveB = parseBenchPercent(b, res.Summary.Rows[0][2]) / 100
	}
	b.ReportMetric(positiveV, "carbon_positive_valancius")
	b.ReportMetric(positiveB, "carbon_positive_baliga")
}

func BenchmarkAblationMatchingPolicy(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationMatching(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		local := parseBenchPercent(b, table.Rows[0][2])
		random := parseBenchPercent(b, table.Rows[1][2])
		gap = (local - random) / 100
	}
	b.ReportMetric(gap, "locality_advantage_valancius")
}

func BenchmarkAblationISPRestriction(b *testing.B) {
	var restricted, cityWide float64
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationSwarmScope(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		restricted = parseBenchPercent(b, table.Rows[0][1]) / 100
		cityWide = parseBenchPercent(b, table.Rows[2][1]) / 100
	}
	b.ReportMetric(restricted, "offload_isp_friendly")
	b.ReportMetric(cityWide, "offload_city_wide")
}

func BenchmarkAblationBitrateSplit(b *testing.B) {
	var split, mixed float64
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationSwarmScope(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		split = parseBenchPercent(b, table.Rows[0][1]) / 100
		mixed = parseBenchPercent(b, table.Rows[1][1]) / 100
	}
	b.ReportMetric(split, "offload_bitrate_split")
	b.ReportMetric(mixed, "offload_bitrate_mixed")
}

func BenchmarkCDNPeakProvisioning(b *testing.B) {
	var peakReduction float64
	for i := 0; i < b.N; i++ {
		table, err := experiments.Provisioning(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		peakReduction = parseBenchPercent(b, table.Rows[0][3]) / 100
	}
	b.ReportMetric(peakReduction, "peak_reduction")
}

func BenchmarkAblationParticipation(b *testing.B) {
	var full, akamai float64
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationParticipation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		full = parseBenchPercent(b, table.Rows[0][2]) / 100
		akamai = parseBenchPercent(b, table.Rows[2][2]) / 100
	}
	b.ReportMetric(full, "savings_full_participation")
	b.ReportMetric(akamai, "savings_30pct_participation")
}

func BenchmarkLiveVsCatchUp(b *testing.B) {
	var liveSavings float64
	for i := 0; i < b.N; i++ {
		table, err := experiments.Live(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		liveSavings = parseBenchPercent(b, table.Rows[0][3]) / 100
	}
	b.ReportMetric(liveSavings, "live_savings_valancius")
}

func BenchmarkAblationTopology(b *testing.B) {
	var series int
	for i := 0; i < b.N; i++ {
		ds, err := experiments.AblationTopology(experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		series = len(ds.Series)
	}
	b.ReportMetric(float64(series), "topologies")
}

// Micro-benchmarks of the performance-critical substrates.

func BenchmarkClosedFormSavings(b *testing.B) {
	model := core.MustNew(energy.Valancius(), topology.DefaultLondon().Probabilities())
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += model.Savings(float64(i%100)+0.1, 1.0)
	}
	_ = sink
}

func BenchmarkLayerExpectation(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		v, err := mminf.LayerExpectation(1.0/345, float64(i%50)+0.5)
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	_ = sink
}

func BenchmarkTraceGeneration(b *testing.B) {
	cfg := trace.DefaultGeneratorConfig(0.002)
	cfg.Days = 7
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorMonth(b *testing.B) {
	cfg := trace.DefaultGeneratorConfig(0.002)
	cfg.Days = 14
	tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	simCfg := sim.DefaultConfig(1)
	simCfg.TrackUsers = false
	b.ResetTimer()
	var offload float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(tr, simCfg)
		if err != nil {
			b.Fatal(err)
		}
		offload = res.Total.Offload()
	}
	b.ReportMetric(offload, "offload")
	b.ReportMetric(float64(len(tr.Sessions))/1000, "ksessions")
}

func BenchmarkMatchingLocalityFirst(b *testing.B) {
	benchmarkPolicy(b, matching.LocalityFirst{})
}

func BenchmarkMatchingRandom(b *testing.B) {
	benchmarkPolicy(b, matching.Random{})
}

// benchmarkPolicy matches a 64-peer interval repeatedly.
func benchmarkPolicy(b *testing.B, policy matching.Policy) {
	b.Helper()
	const n = 64
	peers := make([]matching.Peer, n)
	demands := make([]float64, n)
	caps := make([]float64, n)
	topo := topology.DefaultLondon()
	for i := range peers {
		loc := topo.PlaceDeterministic(uint64(i))
		peers[i] = matching.Peer{User: uint32(i), Exchange: loc.Exchange, PoP: loc.PoP}
		demands[i] = 1.5e6 * 10
		caps[i] = 1.5e6 * 10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := policy.Match(peers, demands, caps, float64(n-1)*1.5e7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorParallel(b *testing.B) {
	cfg := trace.DefaultGeneratorConfig(0.004)
	cfg.Days = 14
	tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	simCfg := sim.DefaultConfig(1)
	simCfg.TrackUsers = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunParallel(tr, simCfg, 4); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Sessions))/1000, "ksessions")
}

// BenchmarkStream measures the streaming replay engine end to end —
// CSV parsing included — on the same 14-day workload as
// BenchmarkSimulatorMonth, reporting throughput in sessions per second
// so the two paths can be compared directly: the streamed replay trades
// a little per-session overhead (event scheduling, windowed reporting)
// for bounded memory and live progress.
func BenchmarkStream(b *testing.B) {
	cfg := trace.DefaultGeneratorConfig(0.002)
	cfg.Days = 14
	tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var csv bytes.Buffer
	if err := tr.WriteCSV(&csv); err != nil {
		b.Fatal(err)
	}
	streamCfg := engine.Config{Sim: sim.DefaultConfig(1), WindowSec: 24 * 3600, Workers: 4}
	streamCfg.Sim.TrackUsers = false
	b.SetBytes(int64(csv.Len()))
	b.ResetTimer()
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		sc, err := trace.NewScanner(bytes.NewReader(csv.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		run, err := engine.Stream(sc, streamCfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := run.Result(); err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
	}
	b.ReportMetric(float64(len(tr.Sessions))/1000, "ksessions")
	b.ReportMetric(float64(len(tr.Sessions)*b.N)/elapsed.Seconds(), "sessions/s")
}

func BenchmarkChunkSimulator(b *testing.B) {
	// One medium Poisson swarm at chunk granularity.
	rng := rand.New(rand.NewSource(3))
	var sessions []trace.Session
	now := 0.0
	const horizon = int64(2 * 86400)
	for user := uint32(0); ; user++ {
		now += rng.ExpFloat64() / 0.004
		start := int64(now) / 10 * 10
		if start >= horizon {
			break
		}
		dur := int32(rng.ExpFloat64()*150) * 10
		if dur < 10 {
			dur = 10
		}
		if start+int64(dur) > horizon {
			continue
		}
		sessions = append(sessions, trace.Session{
			UserID: user, ContentID: 0, ISP: 0,
			Exchange: uint16(rng.Intn(345)),
			StartSec: start, DurationSec: dur, Bitrate: trace.BitrateSD,
		})
	}
	b.ResetTimer()
	var offload float64
	for i := 0; i < b.N; i++ {
		res, err := chunksim.Run(sessions, chunksim.DefaultConfig(1.5e6))
		if err != nil {
			b.Fatal(err)
		}
		offload = res.Offload()
	}
	b.ReportMetric(offload, "chunk_offload")
}

func BenchmarkCarbonDistribution(b *testing.B) {
	cfg := trace.DefaultGeneratorConfig(0.002)
	cfg.Days = 7
	tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(tr, sim.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var positive float64
	for i := 0; i < b.N; i++ {
		positive = carbon.Distribute(res.Users, energy.Baliga()).CarbonPositive
	}
	b.ReportMetric(positive, "carbon_positive")
}

// parseBenchCount parses "1,234" into 1234.
func parseBenchCount(b *testing.B, s string) int {
	b.Helper()
	n := 0
	for _, r := range s {
		if r == ',' {
			continue
		}
		if r < '0' || r > '9' {
			b.Fatalf("not a count: %q", s)
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// parseBenchPercent parses "12.3%" or "-4.2%" into 12.3 / -4.2.
func parseBenchPercent(b *testing.B, s string) float64 {
	b.Helper()
	var intPart, frac, div float64
	div = 1
	sign := 1.0
	seenDot := false
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			if seenDot {
				div *= 10
				frac = frac*10 + float64(r-'0')
			} else {
				intPart = intPart*10 + float64(r-'0')
			}
		case r == '.':
			seenDot = true
		case r == '-':
			sign = -1
		case r == '%':
			return sign * (intPart + frac/div)
		}
	}
	return sign * (intPart + frac/div)
}
